//! Edge sources: the pluggable producers every pipeline run streams from.
//!
//! [`EdgeSource`] is the generation-side mirror of
//! [`EdgeSink`](crate::sink::EdgeSink): a partitioned, chunked,
//! deterministic producer of edges with (optionally exact) predicted
//! properties.  The [`Pipeline`](crate::pipeline::Pipeline) is generic over
//! the source, so the paper's exact Kronecker expansion, the Graph500-style
//! R-MAT sampler (`kron_rmat::RmatSource`), and the raw `B ⊗ C` product all
//! run through the *same* terminals, streamed histogram validation,
//! [`RunReport`](crate::pipeline::RunReport), and
//! [`RunManifest`](crate::manifest::RunManifest).
//!
//! A source is used in two phases:
//!
//! 1. [`EdgeSource::prepare`] turns the source description into a
//!    [`SourceRun`]: factors realised, split resolved, partition fixed —
//!    everything workers share read-only.
//! 2. [`SourceRun::stream_worker`] streams one worker's deterministic share
//!    of the edges through a reusable [`EdgeChunk`] into a fallible
//!    chunk-slice sink.  Workers are independent (the paper's
//!    communication-free property) and the union of all workers' streams is
//!    the whole graph.
//!
//! Sources that know their output exactly (Kronecker) return
//! [`GraphProperties`] from [`SourceRun::predicted_properties`] and validate
//! every Figure-4 field; sampling sources (R-MAT) return `None` and
//! [`SourceRun::validate`] checks only the fields they *can* predict — the
//! rest of the property sheet is measured-only, exactly the workflow the
//! paper contrasts its designs against.

use kron_core::validate::{FieldCheck, ValidationReport};
use kron_core::{CoreError, GraphProperties, KroneckerDesign, SelfLoop};
use kron_sparse::{CooMatrix, SparseError};

use crate::chunk::EdgeChunk;
use crate::driver::DriverConfig;
use crate::generator::self_loop_vertex_index;
use crate::partition::{csc_ordered_triples, Partition};
use crate::split::{choose_split_with_fallback, SplitPlan};

/// What a run does with the single removable self-loop of a triangle-control
/// design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Remove it in-stream, so the sinks receive exactly the designed final
    /// graph (the default, and the paper's construction).
    #[default]
    RemoveDesigned,
    /// Keep every self-loop: the sinks receive the raw `B ⊗ C` product.
    /// Validation then checks the raw counts (vertices, raw edges, product
    /// self-loops) instead of the final-graph property sheet.
    KeepRaw,
}

impl SelfLoopPolicy {
    pub(crate) fn label(self) -> &'static str {
        match self {
            SelfLoopPolicy::RemoveDesigned => "remove_designed",
            SelfLoopPolicy::KeepRaw => "keep_raw",
        }
    }
}

/// How a prepared source describes itself to the run's
/// [`RunManifest`](crate::manifest::RunManifest).
///
/// Kronecker runs fill every field; other sources leave the design-spec
/// fields at their neutral values (empty `star_points`, zero budgets) and
/// identify themselves through `kind` and `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDescriptor {
    /// Source kind recorded in the manifest (`"kronecker"`,
    /// `"kronecker_raw"`, `"rmat"`, …).
    pub kind: &'static str,
    /// The source's sampling seed, for seeded sources.
    pub seed: Option<u64>,
    /// Star points `m̂` of a Kronecker design (empty otherwise).
    pub star_points: Vec<u64>,
    /// Self-loop placement of a Kronecker design (`"None"` otherwise).
    pub self_loop: String,
    /// Exact vertex count, as a decimal string (may exceed `u64`).
    pub vertices: String,
    /// The edge count the source predicts and the run validates against, as
    /// a decimal string — exact for Kronecker, the requested sample count
    /// for R-MAT.
    pub predicted_edges: String,
    /// The resolved `B ⊗ C` split index (0 for non-Kronecker sources).
    pub split_index: usize,
    /// Memory budget for the replicated `C` factor (0 when not applicable).
    pub max_c_edges: u64,
    /// Memory budget for the partitioned `B` factor (0 when not applicable).
    pub max_b_edges: u64,
    /// The source's self-loop handling label (see [`SelfLoopPolicy`]; R-MAT
    /// reports `"raw_samples"` — samples are delivered untouched).
    pub self_loop_policy: String,
}

/// A partitioned, chunked, deterministic producer of edges — the generation
/// side every [`Pipeline`](crate::pipeline::Pipeline) terminal plugs into.
pub trait EdgeSource {
    /// The prepared, worker-shared state of one run.
    type Run: SourceRun + Sync;

    /// The number of vertices of the generated graph (sinks and the
    /// streaming histogram are sized from this), or an error when the graph
    /// cannot be indexed on this machine.
    fn vertices(&self) -> Result<u64, CoreError>;

    /// Validate the configuration and build the run state for `workers`
    /// workers, together with any degradation warnings (e.g. a fallback
    /// split).
    fn prepare(&self, workers: usize) -> Result<(Self::Run, Vec<String>), CoreError>;
}

/// The prepared state of one run of an [`EdgeSource`]: everything the
/// workers share read-only.
pub trait SourceRun {
    /// Stream worker `worker`'s deterministic share of the edges, filling
    /// the caller's reusable `chunk` and handing the fallible `sink` whole
    /// slices.  Returns the number of edges delivered to the sink.
    ///
    /// The first sink error aborts the stream.  The union of all workers'
    /// streams is exactly the source's graph, every worker's stream is
    /// deterministic for a given source configuration, and memory stays
    /// bounded by the chunk (plus whatever the run state already holds).
    ///
    /// `E: From<SparseError>` lets sources that *read* external state —
    /// [`ReplaySource`](crate::replay::ReplaySource) streaming shards back
    /// from disk — surface their own I/O and parse failures through the same
    /// error channel as the sink; purely computational sources never
    /// construct an error themselves.
    fn stream_worker<E, F>(&self, worker: usize, chunk: &mut EdgeChunk, sink: F) -> Result<u64, E>
    where
        E: From<SparseError>,
        F: FnMut(&[(u64, u64)]) -> Result<(), E>;

    /// The exact predicted property sheet, for sources that know their
    /// output ahead of generation; `None` for sampling sources whose
    /// properties are measured-only.
    fn predicted_properties(&self) -> Option<GraphProperties>;

    /// Compare the streamed measurement against whatever this source can
    /// predict exactly — the full Figure-4 sheet for Kronecker, counts only
    /// for R-MAT.
    fn validate(&self, measured: &GraphProperties) -> ValidationReport;

    /// The `B ⊗ C` split plan the run executes, for sources that have one.
    fn split_plan(&self) -> Option<SplitPlan>;

    /// The manifest-facing description of this run's source.
    fn descriptor(&self) -> SourceDescriptor;
}

/// The design's vertex count as a `u64`, or [`CoreError::TooLargeToRealise`]
/// when the graph cannot be indexed on this machine at all.
pub(crate) fn realisable_vertices(design: &KroneckerDesign) -> Result<u64, CoreError> {
    design
        .vertices()
        .to_u64()
        .ok_or_else(|| CoreError::TooLargeToRealise {
            vertices: design.vertices().to_string(),
            edges: design.nnz_with_loops().to_string(),
        })
}

/// The paper's exact Kronecker expansion as an [`EdgeSource`]: split the
/// design into `B ⊗ C`, partition `B`'s CSC-ordered triples evenly, and let
/// each worker expand its slice against the replicated `C` — today's
/// pipeline code path, behind the trait.
///
/// With [`SelfLoopPolicy::KeepRaw`] the same source streams the raw product
/// (self-loops included) and validates the raw counts — the third source
/// kind, `"kronecker_raw"`.
#[derive(Debug, Clone)]
pub struct KroneckerSource<'d> {
    design: &'d KroneckerDesign,
    split: Option<usize>,
    max_c_edges: u64,
    max_b_edges: u64,
    self_loop_policy: SelfLoopPolicy,
}

impl<'d> KroneckerSource<'d> {
    /// A source over `design` with the default budgets of
    /// [`DriverConfig::default`] and an automatically chosen split.
    pub fn new(design: &'d KroneckerDesign) -> Self {
        KroneckerSource::from_config(design, &DriverConfig::default())
    }

    /// A source with the factor budgets taken from a [`DriverConfig`].
    pub fn from_config(design: &'d KroneckerDesign, config: &DriverConfig) -> Self {
        KroneckerSource {
            design,
            split: None,
            max_c_edges: config.max_c_edges,
            max_b_edges: config.max_b_edges,
            self_loop_policy: SelfLoopPolicy::default(),
        }
    }

    /// The design this source expands.
    pub fn design(&self) -> &'d KroneckerDesign {
        self.design
    }

    /// Pin the `B ⊗ C` split index instead of choosing it automatically.
    pub fn split_index(mut self, split_index: usize) -> Self {
        self.split = Some(split_index);
        self
    }

    /// Set the memory budget for the replicated `C` factor, in stored
    /// entries (also the budget the automatic split choice honours).
    pub fn max_c_edges(mut self, max_c_edges: u64) -> Self {
        self.max_c_edges = max_c_edges;
        self
    }

    /// Set the memory budget for the partitioned `B` factor, in stored
    /// entries.
    pub fn max_b_edges(mut self, max_b_edges: u64) -> Self {
        self.max_b_edges = max_b_edges;
        self
    }

    /// Set the self-loop policy.
    pub fn self_loop_policy(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loop_policy = policy;
        self
    }

    /// Resolve the split to run with: the pinned index, or the automatic
    /// choice with its single-worker fallback (which records a warning).
    fn resolve_split(&self, workers: usize) -> Result<(usize, Vec<String>), CoreError> {
        if let Some(index) = self.split {
            return Ok((index, Vec::new()));
        }
        let (plan, warning) = choose_split_with_fallback(self.design, self.max_c_edges, workers)?;
        Ok((plan.split_index, warning.into_iter().collect()))
    }
}

impl<'d> EdgeSource for KroneckerSource<'d> {
    type Run = KroneckerRun<'d>;

    fn vertices(&self) -> Result<u64, CoreError> {
        realisable_vertices(self.design)
    }

    fn prepare(&self, workers: usize) -> Result<(KroneckerRun<'d>, Vec<String>), CoreError> {
        let design = self.design;
        let (split_index, warnings) = self.resolve_split(workers)?;
        let (b_design, c_design) = design.split(split_index)?;
        // Both factors keep their self-loops: the raw product is exactly the
        // designed product, and the one surviving loop is filtered in-stream
        // by its owning worker (unless the policy keeps the raw product).
        let b = b_design.realize_raw(self.max_b_edges)?;
        let c = c_design.realize_raw(self.max_c_edges)?;
        let triples = csc_ordered_triples(&b);
        let partition = Partition::even(triples.len(), workers);
        let split_plan = SplitPlan {
            split_index,
            b_nnz: b_design.nnz_with_loops(),
            c_nnz: c_design.nnz_with_loops(),
            c_vertices: c_design.vertices(),
        };

        // The product self-loop lands in the worker whose B slice holds the
        // diagonal triple (v_B, v_B); that worker filters the single global
        // edge (v, v) out of its stream.
        let remove_loop = self.self_loop_policy == SelfLoopPolicy::RemoveDesigned
            && design.has_removable_self_loop();
        let loop_filter: Option<(usize, u64)> = if remove_loop {
            let b_loop = self_loop_vertex_index(&b_design);
            let position = triples
                .iter()
                .position(|&(r, c, _)| r == b_loop && c == b_loop)
                // lint:allow(no-expect) -- a triangle-control B factor is constructed with exactly one diagonal triple
                .expect("a triangle-control B factor has exactly one diagonal triple");
            let owner = (0..workers)
                .find(|&w| partition.range(w).contains(&position))
                // lint:allow(no-expect) -- the partition above assigns every triple index to exactly one worker range
                .expect("every triple index belongs to one worker");
            Some((owner, self_loop_vertex_index(design)))
        } else {
            None
        };

        let run = KroneckerRun {
            design,
            c,
            triples,
            partition,
            split_plan,
            loop_filter,
            self_loop_policy: self.self_loop_policy,
            max_c_edges: self.max_c_edges,
            max_b_edges: self.max_b_edges,
        };
        Ok((run, warnings))
    }
}

/// The prepared state of one Kronecker run: realised `C`, partitioned `B`
/// triples, and the in-stream self-loop filter.
#[derive(Debug, Clone)]
pub struct KroneckerRun<'d> {
    design: &'d KroneckerDesign,
    c: CooMatrix<u64>,
    triples: Vec<(u64, u64, u64)>,
    partition: Partition,
    split_plan: SplitPlan,
    loop_filter: Option<(usize, u64)>,
    self_loop_policy: SelfLoopPolicy,
    max_c_edges: u64,
    max_b_edges: u64,
}

impl SourceRun for KroneckerRun<'_> {
    fn stream_worker<E, F>(
        &self,
        worker: usize,
        chunk: &mut EdgeChunk,
        mut sink: F,
    ) -> Result<u64, E>
    where
        E: From<SparseError>,
        F: FnMut(&[(u64, u64)]) -> Result<(), E>,
    {
        let slice = &self.triples[self.partition.range(worker)];
        let filter = self
            .loop_filter
            .and_then(|(owner, vertex)| (owner == worker).then_some(vertex));
        let mut removed = false;
        let produced =
            crate::stream::try_stream_block_edges_into(slice, &self.c, chunk, |edges| {
                if let Some(vertex) = filter {
                    if !removed {
                        if let Some(at) =
                            edges.iter().position(|&(r, c)| r == vertex && c == vertex)
                        {
                            removed = true;
                            sink(&edges[..at])?;
                            return sink(&edges[at + 1..]);
                        }
                    }
                }
                sink(edges)
            })?;
        if filter.is_some() {
            debug_assert!(removed, "the owning worker must see the product loop");
        }
        Ok(produced - u64::from(removed))
    }

    fn predicted_properties(&self) -> Option<GraphProperties> {
        Some(self.design.properties())
    }

    fn validate(&self, measured: &GraphProperties) -> ValidationReport {
        match self.self_loop_policy {
            SelfLoopPolicy::RemoveDesigned => {
                kron_core::validate::validate_streamed(&self.design.properties(), measured)
            }
            SelfLoopPolicy::KeepRaw => validate_raw(self.design, measured),
        }
    }

    fn split_plan(&self) -> Option<SplitPlan> {
        Some(self.split_plan.clone())
    }

    fn descriptor(&self) -> SourceDescriptor {
        // The predicted count is the one validate() compares against: the
        // final graph's, or the raw product's for a keep-raw run.
        let predicted_edges = match self.self_loop_policy {
            SelfLoopPolicy::RemoveDesigned => self.design.edges(),
            SelfLoopPolicy::KeepRaw => self.design.nnz_with_loops(),
        };
        SourceDescriptor {
            kind: match self.self_loop_policy {
                SelfLoopPolicy::RemoveDesigned => "kronecker",
                SelfLoopPolicy::KeepRaw => "kronecker_raw",
            },
            seed: None,
            star_points: self.design.star_points().unwrap_or_default(),
            self_loop: format!("{:?}", design_self_loop(self.design)),
            vertices: self.design.vertices().to_string(),
            predicted_edges: predicted_edges.to_string(),
            split_index: self.split_plan.split_index,
            max_c_edges: self.max_c_edges,
            max_b_edges: self.max_b_edges,
            self_loop_policy: self.self_loop_policy.label().to_string(),
        }
    }
}

/// The self-loop placement of a pure star design (the manifest's design
/// spec).  Mixed or non-star designs report the first constituent's
/// placement — the manifest's `star_points` being empty flags those.
fn design_self_loop(design: &KroneckerDesign) -> SelfLoop {
    design
        .constituents()
        .first()
        .and_then(|c| c.as_star())
        .map(|s| s.self_loop())
        .unwrap_or(SelfLoop::None)
}

/// Validate a raw-product run: the streamable fields whose raw values the
/// design predicts exactly — vertices, raw edge count, and product
/// self-loop count.  The degree distribution is not checked (the analytic
/// distribution describes the final graph, not the raw product).
fn validate_raw(design: &KroneckerDesign, measured: &GraphProperties) -> ValidationReport {
    ValidationReport::from_checks(vec![
        FieldCheck::exact("vertices", design.vertices(), &measured.vertices),
        FieldCheck::exact("raw_edges", design.nnz_with_loops(), &measured.edges),
        FieldCheck::exact(
            "raw_self_loops",
            design.product_self_loops(),
            &measured.self_loops,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::SelfLoop;

    #[test]
    fn kronecker_stream_union_is_the_designed_graph() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let source = KroneckerSource::new(&design)
            .split_index(1)
            .max_c_edges(100_000);
        let vertices = source.vertices().unwrap();
        let (run, warnings) = source.prepare(3).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(vertices, design.vertices().to_u64().unwrap());

        let mut all: Vec<(u64, u64)> = Vec::new();
        let mut delivered = 0;
        for worker in 0..3 {
            let mut chunk = EdgeChunk::new(512);
            delivered += run
                .stream_worker::<SparseError, _>(worker, &mut chunk, |edges| {
                    all.extend_from_slice(edges);
                    Ok(())
                })
                .unwrap();
        }
        assert_eq!(delivered as usize, all.len());
        let mut expected: Vec<(u64, u64)> = design
            .realize(1_000_000)
            .unwrap()
            .iter()
            .map(|(r, c, _)| (r, c))
            .collect();
        all.sort_unstable();
        expected.sort_unstable();
        assert_eq!(all, expected);

        let descriptor = run.descriptor();
        assert_eq!(descriptor.kind, "kronecker");
        assert_eq!(descriptor.seed, None);
        assert_eq!(descriptor.star_points, vec![3, 4, 5]);
        assert_eq!(descriptor.split_index, 1);
        assert!(run.predicted_properties().is_some());
        assert!(run.split_plan().is_some());
    }

    #[test]
    fn keep_raw_descriptor_reports_the_raw_source_kind() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        let source = KroneckerSource::new(&design)
            .split_index(1)
            .self_loop_policy(SelfLoopPolicy::KeepRaw);
        let (run, _) = source.prepare(2).unwrap();
        let descriptor = run.descriptor();
        assert_eq!(descriptor.kind, "kronecker_raw");
        assert_eq!(descriptor.self_loop_policy, "keep_raw");
        assert_eq!(
            descriptor.predicted_edges,
            design.nnz_with_loops().to_string()
        );
    }
}
