//@ path: crates/core/src/under_test.rs
pub fn first(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1u32).unwrap();
    }
}
