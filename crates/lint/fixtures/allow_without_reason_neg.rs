//@ path: crates/core/src/under_test.rs
#[allow(dead_code)] // kept for the next PR's staged-executor refactor
fn helper() {}

// The justification may also sit on the line above.
#[allow(dead_code)]
fn other_helper() {}
