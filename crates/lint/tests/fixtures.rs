//! Fixture tests for the lint engine itself.
//!
//! Every `.rs` file directly under `fixtures/` is a miniature workspace
//! source with a virtual path header and expected-diagnostic
//! annotations:
//!
//! ```text
//! //@ path: crates/gen/src/under_test.rs   (mandatory virtual path)
//! //@ expect: <rule>@<line>                (header-form expectation)
//! some_code() //~ <rule>                   (inline-form expectation)
//! ```
//!
//! Every *directory* under `fixtures/` is a miniature multi-file
//! workspace: each `.rs` inside carries its own `//@ path:` header and
//! annotations, and the whole set is linted together through
//! [`kron_lint::lint_workspace`] — this is how the cross-crate
//! panic-reachability chains are proven.
//!
//! In both forms the harness requires the set of *unsuppressed*
//! findings to equal the set of annotations exactly — so every rule has
//! a positive case proving it fires and a negative case proving it
//! stays silent.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use kron_lint::{analyze_file, lint_source, lint_workspace};

/// `(virtual file, rule, line)`.
type Expectation = (String, String, u32);

fn parse_fixture(name: &str, source: &str) -> (String, BTreeSet<(String, u32)>) {
    let mut path = None;
    let mut expected = BTreeSet::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let trimmed = line.trim();
        if let Some(p) = trimmed.strip_prefix("//@ path:") {
            path = Some(p.trim().to_string());
        } else if let Some(e) = trimmed.strip_prefix("//@ expect:") {
            let (rule, at) = e
                .trim()
                .split_once('@')
                .unwrap_or_else(|| panic!("{name}:{lineno}: malformed //@ expect"));
            let at: u32 = at
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("{name}:{lineno}: bad line in //@ expect"));
            expected.insert((rule.trim().to_string(), at));
        }
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split(',') {
                let rule = rule.trim();
                assert!(!rule.is_empty(), "{name}:{lineno}: empty //~ annotation");
                expected.insert((rule.to_string(), lineno));
            }
        }
    }
    let path = path.unwrap_or_else(|| panic!("{name}: fixture lacks a //@ path header"));
    (path, expected)
}

/// Compare unsuppressed findings against expectations, recording a
/// failure line on mismatch.
fn check(
    name: &str,
    actual: BTreeSet<Expectation>,
    expected: BTreeSet<Expectation>,
    failures: &mut Vec<String>,
) {
    if actual != expected {
        let missing: Vec<_> = expected.difference(&actual).collect();
        let surplus: Vec<_> = actual.difference(&expected).collect();
        failures.push(format!(
            "{name}: missing={missing:?} unexpected={surplus:?}"
        ));
    }
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut files = Vec::new();
    let mut workspaces = Vec::new();
    for entry in fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable fixture entry").path();
        if path.is_dir() {
            workspaces.push(path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    files.sort();
    workspaces.sort();
    assert!(
        files.len() >= 30,
        "expected a positive and a negative fixture per rule, found {}",
        files.len()
    );
    assert!(
        !workspaces.is_empty(),
        "expected at least one multi-file workspace fixture directory"
    );

    let mut failures = Vec::new();
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let source = fs::read_to_string(path).expect("readable fixture");
        let (virtual_path, expected) = parse_fixture(name, &source);
        let actual: BTreeSet<Expectation> = lint_source(&virtual_path, &source)
            .into_iter()
            .filter(|f| !f.suppressed)
            .map(|f| (f.file.clone(), f.rule.to_string(), f.line))
            .collect();
        let expected: BTreeSet<Expectation> = expected
            .into_iter()
            .map(|(rule, line)| (virtual_path.clone(), rule, line))
            .collect();
        check(name, actual, expected, &mut failures);
    }

    for ws in &workspaces {
        let name = ws.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let mut members: Vec<_> = fs::read_dir(ws)
            .expect("readable workspace fixture dir")
            .map(|e| e.expect("readable workspace member").path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        members.sort();
        assert!(
            members.len() >= 2,
            "{name}: a workspace fixture needs at least two files"
        );
        let mut analyses = Vec::new();
        let mut expected: BTreeSet<Expectation> = BTreeSet::new();
        for member in &members {
            let member_name = member.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            let source = fs::read_to_string(member).expect("readable fixture");
            let (virtual_path, member_expected) =
                parse_fixture(&format!("{name}/{member_name}"), &source);
            expected.extend(
                member_expected
                    .into_iter()
                    .map(|(rule, line)| (virtual_path.clone(), rule, line)),
            );
            analyses.push(
                analyze_file(&virtual_path, &source)
                    .unwrap_or_else(|| panic!("{name}/{member_name}: path outside jurisdiction")),
            );
        }
        let actual: BTreeSet<Expectation> = lint_workspace(&analyses)
            .into_iter()
            .filter(|f| !f.suppressed)
            .map(|f| (f.file.clone(), f.rule.to_string(), f.line))
            .collect();
        check(name, actual, expected, &mut failures);
    }

    assert!(
        failures.is_empty(),
        "fixture mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_rule_has_positive_and_negative_fixture() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let names: BTreeSet<String> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable fixture entry").file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .collect();
    for (rule, _) in kron_lint::RULES {
        let stem = rule.replace('-', "_");
        for suffix in ["pos", "neg"] {
            let want = format!("{stem}_{suffix}.rs");
            assert!(names.contains(&want), "missing fixture {want} for {rule}");
        }
    }
}

/// The cross-crate chain in the workspace fixture must be *reported as
/// a chain* — the message names every hop from the Pipeline entry point
/// to the panic site — and the suppressed helper call must stay
/// suppressed only because a reasoned `lint:allow` covers it.
#[test]
fn workspace_fixture_reports_the_cross_crate_chain() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("workspace_panic_chain");
    let mut analyses = Vec::new();
    for name in ["pipeline.rs", "sparse.rs"] {
        let source = fs::read_to_string(dir.join(name)).expect("readable fixture");
        let (virtual_path, _) = parse_fixture(name, &source);
        analyses.push(analyze_file(&virtual_path, &source).expect("fixture in jurisdiction"));
    }
    let findings = lint_workspace(&analyses);
    let chain = findings
        .iter()
        .find(|f| f.rule == "panic-reachability" && !f.suppressed)
        .expect("the open cross-crate chain is reported");
    assert_eq!(chain.file, "crates/sparse/src/lib.rs");
    assert!(
        chain.message.contains(
            "Pipeline::count -> gen::stage_total -> sparse::fold_counts -> sparse::tally"
        ),
        "chain message names every hop: {}",
        chain.message
    );
    let suppressed = findings
        .iter()
        .find(|f| f.rule == "panic-reachability" && f.suppressed)
        .expect("the justified helper call is still found, just suppressed");
    assert_eq!(suppressed.file, "crates/gen/src/pipeline.rs");
    assert!(
        suppressed.message.contains("le_u64"),
        "{}",
        suppressed.message
    );
}
