//! Compressed sparse row (CSR) matrices.
//!
//! CSR gives O(1) access to a row's entries, which is what SpGEMM, SpMV, and
//! triangle counting need.  CSR matrices are always fully materialised, so
//! dimensions are `usize`; conversion from the `u64`-indexed [`CooMatrix`]
//! checks that the matrix actually fits in addressable memory.

use serde::{Deserialize, Serialize};

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::semiring::{Scalar, Semiring};

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (maintained by all constructors):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone non-decreasing;
/// * `col_idx.len() == vals.len() == row_ptr[nrows]`;
/// * within each row, column indices are strictly increasing (canonical form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// An empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from a COO matrix, combining duplicates with the semiring ⊕.
    pub fn from_coo<S: Semiring<T>>(coo: &CooMatrix<T>) -> Result<Self, SparseError> {
        let nrows = usize::try_from(coo.nrows()).map_err(|_| SparseError::TooLarge {
            what: "CSR rows",
            requested: coo.nrows() as u128,
        })?;
        let ncols = usize::try_from(coo.ncols()).map_err(|_| SparseError::TooLarge {
            what: "CSR cols",
            requested: coo.ncols() as u128,
        })?;
        let mut canonical = coo.clone();
        canonical.sum_duplicates::<S>();

        let mut row_ptr = vec![0usize; nrows + 1];
        for &r in canonical.row_indices() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = canonical.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![S::zero(); nnz];
        let mut cursor = row_ptr.clone();
        for (r, c, v) in canonical.iter() {
            let slot = cursor[r as usize];
            col_idx[slot] = c as usize;
            vals[slot] = v;
            cursor[r as usize] += 1;
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Build directly from raw CSR arrays (validated).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != nrows + 1 || row_ptr.first() != Some(&0) {
            return Err(SparseError::Parse {
                line: 0,
                message: "row_ptr must have nrows+1 entries starting at 0".into(),
            });
        }
        if col_idx.len() != vals.len() || row_ptr.last() != Some(&col_idx.len()) {
            return Err(SparseError::Parse {
                line: 0,
                message: "col_idx/vals length must equal row_ptr[nrows]".into(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::Parse {
                    line: 0,
                    message: "row_ptr must be monotone".into(),
                });
            }
        }
        for r in 0..nrows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for pair in row.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(SparseError::Parse {
                        line: 0,
                        message: format!("row {r} column indices not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r as u64,
                        col: last as u64,
                        nrows: nrows as u64,
                        ncols: ncols as u64,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// The column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[T]) {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        (&self.col_idx[start..end], &self.vals[start..end])
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)` or the semiring zero if absent.
    pub fn get<S: Semiring<T>>(&self, r: usize, c: usize) -> T {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(pos) => vals[pos],
            Err(_) => S::zero(),
        }
    }

    /// Iterate over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Convert back to COO format.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut out = CooMatrix::with_capacity(self.nrows as u64, self.ncols as u64, self.nnz());
        for (r, c, v) in self.iter() {
            out.push(r as u64, c as u64, v)
                // lint:allow(no-expect) -- indices were validated against the matrix dimensions at construction
                .expect("indices in bounds by invariant");
        }
        out
    }

    /// Transpose via a counting pass (produces canonical CSR).
    pub fn transpose(&self) -> CsrMatrix<T>
    where
        T: Default,
    {
        let mut col_counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            col_counts[c] += 1;
        }
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for c in 0..self.ncols {
            row_ptr[c + 1] = row_ptr[c] + col_counts[c];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![T::default(); self.nnz()];
        let mut cursor = row_ptr.clone();
        for (r, c, v) in self.iter() {
            let slot = cursor[c];
            col_idx[slot] = r;
            vals[slot] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Whether the sparsity pattern and values are symmetric.
    pub fn is_symmetric(&self) -> bool
    where
        T: Default,
    {
        self.nrows == self.ncols && self.transpose() == *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;

    fn star4() -> CsrMatrix<u64> {
        // Undirected star with centre 0 and leaves 1..3.
        let coo = CooMatrix::from_edges(4, 4, vec![(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 0)])
            .unwrap();
        CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap()
    }

    #[test]
    fn from_coo_builds_canonical_form() {
        let m = star4();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.row(0).0, &[1, 2, 3]);
        assert_eq!(m.get::<PlusTimes>(0, 2), 1);
        assert_eq!(m.get::<PlusTimes>(1, 2), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let coo = CooMatrix::from_entries(2, 2, vec![(0, 1, 2u64), (0, 1, 3)]).unwrap();
        let m = CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get::<PlusTimes>(0, 1), 5);
    }

    #[test]
    fn zeros_matrix() {
        let m = CsrMatrix::<u64>::zeros(3, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 5);
        assert_eq!(m.row(2).0.len(), 0);
    }

    #[test]
    fn round_trip_through_coo() {
        let m = star4();
        let back = CsrMatrix::from_coo::<PlusTimes>(&m.to_coo()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = star4();
        assert!(m.is_symmetric());
        let coo = CooMatrix::from_edges(3, 3, vec![(0, 1), (1, 2)]).unwrap();
        let asym = CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap();
        assert!(!asym.is_symmetric());
        let t = asym.transpose();
        assert_eq!(t.get::<PlusTimes>(1, 0), 1);
        assert_eq!(t.get::<PlusTimes>(2, 1), 1);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn from_raw_validates() {
        // Valid 2x2 identity.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1u64, 1]).is_ok());
        // Bad row_ptr length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1u64]).is_err());
        // Non-monotone row_ptr.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1u64, 1]).is_err());
        // Unsorted columns within a row.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1u64, 1]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1u64]).is_err());
        // Length mismatch.
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0], vec![1u64]).is_err());
    }

    #[test]
    fn iter_yields_row_major_entries() {
        let m = star4();
        let entries: Vec<(usize, usize, u64)> = m.iter().collect();
        assert_eq!(entries[0], (0, 1, 1));
        assert_eq!(entries.len(), 6);
        assert!(entries
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::semiring::PlusTimes;
    use proptest::prelude::*;

    fn arb_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (1u64..16, 1u64..16).prop_flat_map(|(nr, nc)| {
            proptest::collection::vec((0..nr, 0..nc, 1u64..5), 0..50)
                .prop_map(move |es| CooMatrix::from_entries(nr, nc, es).unwrap())
        })
    }

    proptest! {
        #[test]
        fn csr_matches_coo_lookups(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap();
            for r in 0..coo.nrows() {
                for c in 0..coo.ncols() {
                    prop_assert_eq!(
                        csr.get::<PlusTimes>(r as usize, c as usize),
                        coo.get::<PlusTimes>(r, c)
                    );
                }
            }
        }

        #[test]
        fn transpose_involution(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap();
            prop_assert_eq!(csr.transpose().transpose(), csr);
        }

        #[test]
        fn row_nnz_sums_to_nnz(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap();
            let total: usize = (0..csr.nrows()).map(|r| csr.row_nnz(r)).sum();
            prop_assert_eq!(total, csr.nnz());
        }
    }
}
