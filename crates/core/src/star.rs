//! Star graph constituents.
//!
//! A star graph with `m̂` points has `m = m̂ + 1` vertices: one centre
//! (vertex 0) connected to every point (vertices `1..=m̂`).  Stars are the
//! paper's building blocks because they are the smallest exactly-power-law
//! graphs (`n(1) = m̂`, `n(m̂) = 1`, slope `α = 1`) and because every exact
//! property of a star — edge count, degree distribution, triangle raw sum —
//! has a closed form.
//!
//! The paper's three triangle regimes correspond to where (if anywhere) a
//! self-loop is placed on the star before taking Kronecker products; that
//! choice is [`SelfLoop`].

use serde::{Deserialize, Serialize};

use kron_bignum::BigUint;
use kron_sparse::CooMatrix;

use crate::degree::DegreeDistribution;
use crate::error::CoreError;

/// Where a self-loop is placed on each constituent star.
///
/// * [`SelfLoop::None`] — plain bipartite star: the product graph has **zero
///   triangles** (the paper's baseline case).
/// * [`SelfLoop::Centre`] — self-loop on the centre vertex: the product is
///   **triangle-rich** (paper §IV-B, "Case 1: Many Triangles").
/// * [`SelfLoop::Leaf`] — self-loop on one point vertex: the product has a
///   **modest number of triangles** (paper §IV-C, "Case 2: Some Triangles").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SelfLoop {
    /// No self-loop: bipartite star, zero triangles in the product.
    #[default]
    None,
    /// Self-loop on the centre vertex (vertex 0).
    Centre,
    /// Self-loop on the last point vertex (vertex `m̂`).
    Leaf,
}

/// A star-graph constituent with `m̂` points and an optional self-loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StarGraph {
    points: u64,
    self_loop: SelfLoop,
}

impl StarGraph {
    /// Create a star with `points = m̂ ≥ 1` points and the given self-loop
    /// placement.
    pub fn new(points: u64, self_loop: SelfLoop) -> Result<Self, CoreError> {
        if points == 0 {
            return Err(CoreError::InvalidStar {
                points,
                message: "a star needs at least one point".into(),
            });
        }
        Ok(StarGraph { points, self_loop })
    }

    /// A plain star with no self-loop.
    pub fn plain(points: u64) -> Result<Self, CoreError> {
        StarGraph::new(points, SelfLoop::None)
    }

    /// Number of points `m̂` (leaves).
    pub fn points(&self) -> u64 {
        self.points
    }

    /// Self-loop placement.
    pub fn self_loop(&self) -> SelfLoop {
        self.self_loop
    }

    /// Number of vertices `m = m̂ + 1`.
    pub fn vertices(&self) -> u64 {
        self.points + 1
    }

    /// Number of stored adjacency entries (`2m̂` without a self-loop,
    /// `2m̂ + 1` with one).
    pub fn nnz(&self) -> u64 {
        match self.self_loop {
            SelfLoop::None => 2 * self.points,
            SelfLoop::Centre | SelfLoop::Leaf => 2 * self.points + 1,
        }
    }

    /// The exact degree distribution (degree → vertex count), where the
    /// degree of a vertex is the number of stored entries in its adjacency
    /// row (the paper's `nnz`-per-row definition; a self-loop contributes 1).
    pub fn degree_distribution(&self) -> DegreeDistribution {
        let mut dist = DegreeDistribution::new();
        let m_hat = self.points;
        match self.self_loop {
            SelfLoop::None => {
                dist.add(BigUint::from(1u64), BigUint::from(m_hat));
                dist.add(BigUint::from(m_hat), BigUint::one());
            }
            SelfLoop::Centre => {
                dist.add(BigUint::from(1u64), BigUint::from(m_hat));
                dist.add(BigUint::from(m_hat + 1), BigUint::one());
            }
            SelfLoop::Leaf => {
                if m_hat > 1 {
                    dist.add(BigUint::from(1u64), BigUint::from(m_hat - 1));
                }
                dist.add(BigUint::from(2u64), BigUint::one());
                dist.add(BigUint::from(m_hat), BigUint::one());
            }
        }
        dist
    }

    /// Degree of the vertex carrying the self-loop (used for the product's
    /// degree-distribution adjustment after the final self-loop is removed).
    /// `None` when the star has no self-loop.
    pub fn self_loop_degree(&self) -> Option<u64> {
        match self.self_loop {
            SelfLoop::None => None,
            SelfLoop::Centre => Some(self.points + 1),
            SelfLoop::Leaf => Some(2),
        }
    }

    /// The exact raw triangle sum `1ᵀ((A·A) ⊗ A)1` of this star's adjacency
    /// matrix:
    ///
    /// * no self-loop → `0` (bipartite graphs have no closed 3-walks through
    ///   their own edges);
    /// * centre self-loop → `3m̂ + 1`;
    /// * leaf self-loop → `4`.
    pub fn triangle_raw_sum(&self) -> u64 {
        match self.self_loop {
            SelfLoop::None => 0,
            SelfLoop::Centre => 3 * self.points + 1,
            SelfLoop::Leaf => 4,
        }
    }

    /// Power-law slope of the star's own degree distribution,
    /// `α = log n(1) / log d_max = 1` for every plain star.
    pub fn alpha(&self) -> f64 {
        if self.points <= 1 {
            return 1.0;
        }
        (self.points as f64).ln() / (self.points as f64).ln()
    }

    /// Materialise the star's adjacency matrix as a COO matrix.
    pub fn adjacency(&self) -> CooMatrix<u64> {
        let m = self.vertices();
        let mut edges = Vec::with_capacity(self.nnz() as usize);
        for leaf in 1..=self.points {
            edges.push((0u64, leaf));
            edges.push((leaf, 0u64));
        }
        match self.self_loop {
            SelfLoop::None => {}
            SelfLoop::Centre => edges.push((0, 0)),
            SelfLoop::Leaf => edges.push((self.points, self.points)),
        }
        // lint:allow(no-expect) -- the loop bounds above keep every star index below m
        CooMatrix::from_edges(m, m, edges).expect("star indices are in bounds by construction")
    }

    /// Out-vertex / in-vertex incidence matrices `(E_out, E_in)` such that
    /// `A = E_outᵀ · E_in` (one row per stored adjacency entry, treating each
    /// directed entry — including a self-loop — as one edge).
    pub fn incidence(&self) -> (CooMatrix<u64>, CooMatrix<u64>) {
        let adjacency = self.adjacency();
        let m = self.vertices();
        let nnz = adjacency.nnz() as u64;
        let mut eout = CooMatrix::new(nnz, m);
        let mut ein = CooMatrix::new(nnz, m);
        for (e, (i, j, _)) in adjacency.iter().enumerate() {
            // lint:allow(no-expect) -- edge index e < edge count by the enumeration
            eout.push(e as u64, i, 1).expect("edge index in bounds");
            // lint:allow(no-expect) -- edge index e < edge count by the enumeration
            ein.push(e as u64, j, 1).expect("edge index in bounds");
        }
        (eout, ein)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_sparse::ops::spgemm;
    use kron_sparse::reduce::degree_distribution;
    use kron_sparse::triangles::triangle_raw_sum;
    use kron_sparse::{CsrMatrix, PlusTimes};

    #[test]
    fn rejects_zero_points() {
        assert!(StarGraph::new(0, SelfLoop::None).is_err());
        assert!(StarGraph::plain(1).is_ok());
    }

    #[test]
    fn counts_for_plain_star() {
        let s = StarGraph::plain(5).unwrap();
        assert_eq!(s.vertices(), 6);
        assert_eq!(s.nnz(), 10);
        assert_eq!(s.triangle_raw_sum(), 0);
        assert_eq!(s.self_loop_degree(), None);
        let adjacency = s.adjacency();
        assert_eq!(adjacency.nnz(), 10);
        assert!(adjacency.is_symmetric::<PlusTimes>());
    }

    #[test]
    fn counts_for_looped_stars() {
        let c = StarGraph::new(5, SelfLoop::Centre).unwrap();
        assert_eq!(c.nnz(), 11);
        assert_eq!(c.self_loop_degree(), Some(6));
        let l = StarGraph::new(5, SelfLoop::Leaf).unwrap();
        assert_eq!(l.nnz(), 11);
        assert_eq!(l.self_loop_degree(), Some(2));
    }

    #[test]
    fn degree_distribution_matches_measured() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            for points in [1u64, 2, 3, 5, 9, 16] {
                let s = StarGraph::new(points, self_loop).unwrap();
                let predicted = s.degree_distribution();
                let measured = degree_distribution(&s.adjacency());
                for (d, count) in measured {
                    if d == 0 {
                        assert_eq!(count, 0, "no empty vertices in a star");
                        continue;
                    }
                    assert_eq!(
                        predicted.count(&BigUint::from(d)),
                        BigUint::from(count),
                        "mismatch at degree {d} for m̂={points}, {self_loop:?}"
                    );
                }
                assert_eq!(
                    predicted.total_vertices(),
                    BigUint::from(s.vertices()),
                    "distribution must cover every vertex"
                );
            }
        }
    }

    #[test]
    fn triangle_raw_sum_matches_measured() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            for points in [1u64, 2, 3, 5, 9] {
                let s = StarGraph::new(points, self_loop).unwrap();
                let csr = CsrMatrix::from_coo::<PlusTimes>(&s.adjacency()).unwrap();
                assert_eq!(
                    triangle_raw_sum(&csr).unwrap(),
                    s.triangle_raw_sum(),
                    "raw triangle sum mismatch for m̂={points}, {self_loop:?}"
                );
            }
        }
    }

    #[test]
    fn incidence_matrices_reconstruct_adjacency() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let s = StarGraph::new(4, self_loop).unwrap();
            let (eout, ein) = s.incidence();
            let adjacency = spgemm::<u64, PlusTimes>(
                &CsrMatrix::from_coo::<PlusTimes>(&eout.transpose()).unwrap(),
                &CsrMatrix::from_coo::<PlusTimes>(&ein).unwrap(),
            )
            .unwrap();
            let expected = CsrMatrix::from_coo::<PlusTimes>(&s.adjacency()).unwrap();
            assert_eq!(
                adjacency, expected,
                "EoutT*Ein must equal A for {self_loop:?}"
            );
        }
    }

    #[test]
    fn star_alpha_is_one() {
        assert_eq!(StarGraph::plain(7).unwrap().alpha(), 1.0);
        assert_eq!(StarGraph::plain(1).unwrap().alpha(), 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kron_sparse::reduce::row_counts;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn nnz_matches_adjacency(points in 1u64..64,
                                 which in 0u8..3) {
            let self_loop = match which { 0 => SelfLoop::None, 1 => SelfLoop::Centre, _ => SelfLoop::Leaf };
            let s = StarGraph::new(points, self_loop).unwrap();
            prop_assert_eq!(s.adjacency().nnz() as u64, s.nnz());
        }

        #[test]
        fn degree_distribution_covers_all_vertices(points in 1u64..64, which in 0u8..3) {
            let self_loop = match which { 0 => SelfLoop::None, 1 => SelfLoop::Centre, _ => SelfLoop::Leaf };
            let s = StarGraph::new(points, self_loop).unwrap();
            prop_assert_eq!(s.degree_distribution().total_vertices(), BigUint::from(s.vertices()));
        }

        #[test]
        fn degree_sum_equals_nnz(points in 1u64..64, which in 0u8..3) {
            let self_loop = match which { 0 => SelfLoop::None, 1 => SelfLoop::Centre, _ => SelfLoop::Leaf };
            let s = StarGraph::new(points, self_loop).unwrap();
            // Sum of row-degrees equals the number of stored entries.
            let measured: u64 = row_counts(&s.adjacency()).iter().sum();
            prop_assert_eq!(measured, s.nnz());
            prop_assert_eq!(s.degree_distribution().total_edge_endpoints(), BigUint::from(s.nnz()));
        }
    }
}
