//! Figure 4: exact agreement between the predicted and measured degree
//! distribution of a trillion-edge power-law Kronecker graph.
//!
//! The full-scale design (11,177,649,600 vertices, 1,853,002,140,758 edges,
//! 6,777,007,252,427 triangles) is predicted analytically and its degree
//! distribution series printed.  A machine-scale design with the same
//! structure is then *streamed* through the out-of-core shard driver — the
//! edges are counted and histogrammed but never stored — and the measured
//! distribution compared point-by-point with the prediction: the figure's
//! "predicted" and "measured" curves, reproduced in bounded memory.
//!
//! Pass `--smoke` for the CI smoke mode: a small design, still streamed and
//! still exact, finishing in well under a second.

use kron_bench::{design, figure_header, machine_pipeline, paper, print_distribution_series};
use kron_bignum::grouped;
use kron_core::validate::{compare_properties, measure_properties};
use kron_core::SelfLoop;

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    figure_header(
        "Figure 4",
        "predicted vs measured degree distribution (centre-loop design)",
    );

    if !smoke {
        // Full paper scale, analytic.
        let full = design(paper::FIG3_4, SelfLoop::Centre);
        println!("full-scale design (analytic):");
        println!("  vertices:  {}", grouped(&full.vertices().to_string()));
        println!("  edges:     {}", grouped(&full.edges().to_string()));
        println!(
            "  triangles: {}",
            grouped(&full.triangles().unwrap().to_string())
        );
        println!(
            "  edge/vertex ratio: {:.4}  (paper caption: 165.7774)",
            full.properties().edge_vertex_ratio()
        );
        println!("\npredicted degree distribution of the full-scale graph:");
        print_distribution_series(&full.degree_distribution(), 24);
    }

    // Machine scale (or smoke scale), streamed through the shard driver and
    // measured from the merged per-worker degree histograms.
    let (points, split, workers) = if smoke {
        (&[3u64, 4, 5][..], 1usize, 2usize)
    } else {
        (paper::MACHINE_SCALE, paper::MACHINE_SCALE_SPLIT, 8)
    };
    let scaled = design(points, SelfLoop::Centre);
    println!("\nstreaming generation with the same structure (m̂ = {points:?}):");
    let run = machine_pipeline(&scaled, workers)
        .split_index(split)
        .count()
        .expect("machine-scale factors fit in memory");
    println!(
        "  streamed {} edges on {} workers at {:.1} Medges/s (no edge was ever stored)",
        grouped(&run.stats.total_edges.to_string()),
        run.stats.workers,
        run.stats.edges_per_second() / 1e6
    );

    println!("\npredicted vs measured (every streamable field exact):");
    println!("{}", run.validation);
    assert!(run.validation.is_exact_match());

    if !smoke {
        // Triangles cannot be measured from a stream; at machine scale the
        // graph still fits, so collect it into COO blocks once and validate
        // every field — the triangle count included.
        let collected = machine_pipeline(&scaled, workers)
            .split_index(split)
            .collect_coo()
            .expect("machine-scale design fits in memory");
        let measured = measure_properties(&collected.assemble()).expect("measurable");
        let full_report = compare_properties(&scaled.properties(), &measured);
        println!("\nmaterialised cross-check (triangle count included):");
        println!("{full_report}");
        assert!(full_report.is_exact_match());
    }

    println!("\nmeasured degree distribution (equals prediction exactly):");
    print_distribution_series(&run.measured.degree_distribution, 24);
    println!("\nFigure 4 reproduced: predicted and measured distributions are identical.");
}
