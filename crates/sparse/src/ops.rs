//! Element-wise and matrix-product kernels.
//!
//! * element-wise add (`⊕`): graph union / edge-weight combination;
//! * element-wise multiply (`⊗`): graph intersection / masking;
//! * SpGEMM (`A ⊕.⊗ B`): the matrix product used to build adjacency matrices
//!   from incidence matrices and to count triangles;
//! * SpMV: matrix-vector product for degree-style reductions.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::semiring::{Scalar, Semiring};

/// Element-wise addition of two COO matrices (graph union).
///
/// Entries present in both operands are combined with ⊕.
pub fn ewise_add<T: Scalar, S: Semiring<T>>(
    a: &CooMatrix<T>,
    b: &CooMatrix<T>,
) -> Result<CooMatrix<T>, SparseError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "ewise_add",
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    let mut out = a.clone();
    out.append(b)?;
    out.sum_duplicates::<S>();
    Ok(out)
}

/// Element-wise multiplication of two COO matrices (graph intersection).
///
/// Only coordinates present (non-zero) in *both* operands survive, with
/// values combined by ⊗.
pub fn ewise_mul<T: Scalar, S: Semiring<T>>(
    a: &CooMatrix<T>,
    b: &CooMatrix<T>,
) -> Result<CooMatrix<T>, SparseError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "ewise_mul",
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    let mut ca = a.clone();
    ca.sum_duplicates::<S>();
    let mut cb = b.clone();
    cb.sum_duplicates::<S>();

    // Merge two sorted triple streams on matching coordinates.
    let mut out = CooMatrix::new(a.nrows(), a.ncols());
    let mut ib = 0usize;
    let b_rows = cb.row_indices();
    let b_cols = cb.col_indices();
    let b_vals = cb.values();
    for (r, c, v) in ca.iter() {
        while ib < cb.nnz() && (b_rows[ib], b_cols[ib]) < (r, c) {
            ib += 1;
        }
        if ib < cb.nnz() && (b_rows[ib], b_cols[ib]) == (r, c) {
            let val = S::mul(v, b_vals[ib]);
            if !S::is_zero(val) {
                out.push(r, c, val)?;
            }
        }
    }
    Ok(out)
}

/// Sparse matrix-matrix multiplication (`C = A ⊕.⊗ B`) over a semiring,
/// using a per-row sparse accumulator (Gustavson's algorithm).
pub fn spgemm<T: Scalar, S: Semiring<T>>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm",
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (b.nrows() as u64, b.ncols() as u64),
        });
    }
    let nrows = a.nrows();
    let ncols = b.ncols();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();

    // Dense accumulator row, reset lazily via the touched-columns list.
    let mut accumulator = vec![S::zero(); ncols];
    let mut touched: Vec<usize> = Vec::new();

    for i in 0..nrows {
        let (a_cols, a_vals) = a.row(i);
        for (&k, &a_ik) in a_cols.iter().zip(a_vals.iter()) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals.iter()) {
                let contribution = S::mul(a_ik, b_kj);
                if S::is_zero(accumulator[j]) && !S::is_zero(contribution) {
                    touched.push(j);
                    accumulator[j] = contribution;
                } else {
                    accumulator[j] = S::add(accumulator[j], contribution);
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            if !S::is_zero(accumulator[j]) {
                col_idx.push(j);
                vals.push(accumulator[j]);
            }
            accumulator[j] = S::zero();
        }
        touched.clear();
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw(nrows, ncols, row_ptr, col_idx, vals)
}

/// Sparse matrix-vector product `y = A ⊕.⊗ x` over a semiring.
pub fn spmv<T: Scalar, S: Semiring<T>>(a: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>, SparseError> {
    if x.len() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (x.len() as u64, 1),
        });
    }
    let mut y = vec![S::zero(); a.nrows()];
    for (i, out) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(i);
        let mut acc = S::zero();
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            acc = S::add(acc, S::mul(v, x[j]));
        }
        *out = acc;
    }
    Ok(y)
}

/// `1ᵀ M 1`: reduce every stored entry of a CSR matrix with ⊕.
pub fn sum_all<T: Scalar, S: Semiring<T>>(m: &CsrMatrix<T>) -> T {
    m.values().iter().fold(S::zero(), |acc, &v| S::add(acc, v))
}

/// `1ᵀ M 1` for COO matrices.
pub fn sum_all_coo<T: Scalar, S: Semiring<T>>(m: &CooMatrix<T>) -> T {
    m.values().iter().fold(S::zero(), |acc, &v| S::add(acc, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolOrAnd, MinPlus, PlusTimes};

    fn coo(entries: Vec<(u64, u64, u64)>, n: u64) -> CooMatrix<u64> {
        CooMatrix::from_entries(n, n, entries).unwrap()
    }

    #[test]
    fn ewise_add_unions_graphs() {
        let a = coo(vec![(0, 1, 1), (1, 2, 2)], 3);
        let b = coo(vec![(0, 1, 5), (2, 0, 7)], 3);
        let c = ewise_add::<u64, PlusTimes>(&a, &b).unwrap();
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.get::<PlusTimes>(0, 1), 6);
        assert_eq!(c.get::<PlusTimes>(1, 2), 2);
        assert_eq!(c.get::<PlusTimes>(2, 0), 7);
    }

    #[test]
    fn ewise_mul_intersects_graphs() {
        let a = coo(vec![(0, 1, 2), (1, 2, 3), (2, 2, 4)], 3);
        let b = coo(vec![(0, 1, 5), (2, 0, 7), (2, 2, 2)], 3);
        let c = ewise_mul::<u64, PlusTimes>(&a, &b).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get::<PlusTimes>(0, 1), 10);
        assert_eq!(c.get::<PlusTimes>(2, 2), 8);
        assert_eq!(c.get::<PlusTimes>(1, 2), 0);
    }

    #[test]
    fn ewise_dimension_mismatch() {
        let a = coo(vec![(0, 1, 1)], 3);
        let b = CooMatrix::from_entries(2, 2, vec![(0, 1, 1u64)]).unwrap();
        assert!(ewise_add::<u64, PlusTimes>(&a, &b).is_err());
        assert!(ewise_mul::<u64, PlusTimes>(&a, &b).is_err());
    }

    #[test]
    fn spgemm_small_known_product() {
        // A = [[1, 2], [0, 3]], B = [[4, 0], [5, 6]]  ->  AB = [[14, 12], [15, 18]]
        let a = CsrMatrix::from_coo::<PlusTimes>(
            &CooMatrix::from_entries(2, 2, vec![(0, 0, 1u64), (0, 1, 2), (1, 1, 3)]).unwrap(),
        )
        .unwrap();
        let b = CsrMatrix::from_coo::<PlusTimes>(
            &CooMatrix::from_entries(2, 2, vec![(0, 0, 4u64), (1, 0, 5), (1, 1, 6)]).unwrap(),
        )
        .unwrap();
        let c = spgemm::<u64, PlusTimes>(&a, &b).unwrap();
        assert_eq!(c.get::<PlusTimes>(0, 0), 14);
        assert_eq!(c.get::<PlusTimes>(0, 1), 12);
        assert_eq!(c.get::<PlusTimes>(1, 0), 15);
        assert_eq!(c.get::<PlusTimes>(1, 1), 18);
    }

    #[test]
    fn spgemm_identity_is_neutral() {
        let a = CsrMatrix::from_coo::<PlusTimes>(&coo(vec![(0, 1, 3), (2, 0, 4), (1, 1, 9)], 3))
            .unwrap();
        let eye = CsrMatrix::from_coo::<PlusTimes>(&CooMatrix::<u64>::identity(3)).unwrap();
        assert_eq!(spgemm::<u64, PlusTimes>(&a, &eye).unwrap(), a);
        assert_eq!(spgemm::<u64, PlusTimes>(&eye, &a).unwrap(), a);
    }

    #[test]
    fn spgemm_dimension_mismatch() {
        let a = CsrMatrix::<u64>::zeros(2, 3);
        let b = CsrMatrix::<u64>::zeros(2, 3);
        assert!(spgemm::<u64, PlusTimes>(&a, &b).is_err());
    }

    #[test]
    fn spgemm_min_plus_computes_shortest_paths() {
        // Path graph 0 -> 1 -> 2 with weights 2 and 3; A^2 over min-plus gives
        // the 2-hop distance 0 -> 2 = 5.
        let inf = u64::MAX;
        let entries = vec![(0u64, 1u64, 2u64), (1, 2, 3)];
        let mut coo = CooMatrix::from_entries(3, 3, entries).unwrap();
        coo.sum_duplicates::<MinPlus>();
        let a = CsrMatrix::from_coo::<MinPlus>(&coo).unwrap();
        let a2 = spgemm::<u64, MinPlus>(&a, &a).unwrap();
        assert_eq!(a2.get::<MinPlus>(0, 2), 5);
        assert_eq!(a2.get::<MinPlus>(0, 1), inf);
    }

    #[test]
    fn spmv_degree_style_reduction() {
        let a = CsrMatrix::from_coo::<PlusTimes>(&coo(vec![(0, 1, 1), (0, 2, 1), (2, 0, 1)], 3))
            .unwrap();
        let ones = vec![1u64; 3];
        let out_degrees = spmv::<u64, PlusTimes>(&a, &ones).unwrap();
        assert_eq!(out_degrees, vec![2, 0, 1]);
        assert!(spmv::<u64, PlusTimes>(&a, &[1, 1]).is_err());
    }

    #[test]
    fn sum_all_counts_entries() {
        let a = coo(vec![(0, 1, 1), (0, 2, 1), (2, 0, 1)], 3);
        assert_eq!(sum_all_coo::<u64, PlusTimes>(&a), 3);
        let csr = CsrMatrix::from_coo::<PlusTimes>(&a).unwrap();
        assert_eq!(sum_all::<u64, PlusTimes>(&csr), 3);
    }

    #[test]
    fn bool_spgemm_is_reachability() {
        let a = CooMatrix::from_entries(3, 3, vec![(0, 1, true), (1, 2, true)]).unwrap();
        let csr = CsrMatrix::from_coo::<BoolOrAnd>(&a).unwrap();
        let a2 = spgemm::<bool, BoolOrAnd>(&csr, &csr).unwrap();
        assert!(a2.get::<BoolOrAnd>(0, 2));
        assert!(!a2.get::<BoolOrAnd>(1, 0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::semiring::PlusTimes;
    use proptest::prelude::*;

    fn arb_square(n: u64) -> impl Strategy<Value = CooMatrix<u64>> {
        proptest::collection::vec((0..n, 0..n, 1u64..4), 0..30)
            .prop_map(move |es| CooMatrix::from_entries(n, n, es).unwrap())
    }

    fn dense_mul(a: &[Vec<u64>], b: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let n = a.len();
        let mut c = vec![vec![0u64; n]; n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        c
    }

    proptest! {
        #[test]
        fn spgemm_matches_dense(a in arb_square(6), b in arb_square(6)) {
            let ca = CsrMatrix::from_coo::<PlusTimes>(&a).unwrap();
            let cb = CsrMatrix::from_coo::<PlusTimes>(&b).unwrap();
            let product = spgemm::<u64, PlusTimes>(&ca, &cb).unwrap();
            let dense = dense_mul(
                &a.to_dense::<PlusTimes>(100).unwrap(),
                &b.to_dense::<PlusTimes>(100).unwrap(),
            );
            for (i, dense_row) in dense.iter().enumerate() {
                for (j, &expected) in dense_row.iter().enumerate() {
                    prop_assert_eq!(product.get::<PlusTimes>(i, j), expected);
                }
            }
        }

        #[test]
        fn ewise_add_commutes(a in arb_square(6), b in arb_square(6)) {
            let ab = ewise_add::<u64, PlusTimes>(&a, &b).unwrap();
            let ba = ewise_add::<u64, PlusTimes>(&b, &a).unwrap();
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn ewise_mul_commutes(a in arb_square(6), b in arb_square(6)) {
            let ab = ewise_mul::<u64, PlusTimes>(&a, &b).unwrap();
            let ba = ewise_mul::<u64, PlusTimes>(&b, &a).unwrap();
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn kron_mixed_product_identity(a in arb_square(3), b in arb_square(3),
                                       c in arb_square(3), d in arb_square(3)) {
            // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
            use crate::kron::kron_coo;
            let ab = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
            let cd = kron_coo::<u64, PlusTimes>(&c, &d).unwrap();
            let left = spgemm::<u64, PlusTimes>(
                &CsrMatrix::from_coo::<PlusTimes>(&ab).unwrap(),
                &CsrMatrix::from_coo::<PlusTimes>(&cd).unwrap(),
            ).unwrap();

            let ac = spgemm::<u64, PlusTimes>(
                &CsrMatrix::from_coo::<PlusTimes>(&a).unwrap(),
                &CsrMatrix::from_coo::<PlusTimes>(&c).unwrap(),
            ).unwrap();
            let bd = spgemm::<u64, PlusTimes>(
                &CsrMatrix::from_coo::<PlusTimes>(&b).unwrap(),
                &CsrMatrix::from_coo::<PlusTimes>(&d).unwrap(),
            ).unwrap();
            let right = kron_coo::<u64, PlusTimes>(&ac.to_coo(), &bd.to_coo()).unwrap();
            let right_csr = CsrMatrix::from_coo::<PlusTimes>(&right).unwrap();
            prop_assert_eq!(left, right_csr);
        }
    }
}
