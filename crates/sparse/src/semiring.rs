//! Semirings: the algebraic structure every sparse kernel is generic over.
//!
//! The paper relies on the fact that the Kronecker product keeps its useful
//! properties (associativity, distributivity over element-wise addition, the
//! mixed-product rule with matrix multiplication) whenever element-wise
//! addition and multiplication form a semiring with `0` as the annihilator.
//! Modelling that explicitly lets the same kernels count edges (`PlusTimes`
//! over integers), test reachability (`BoolOrAnd`), or compute shortest
//! hops (`MinPlus`) without duplication — the GraphBLAS philosophy.

use std::fmt::Debug;

/// A value type usable inside sparse matrices.
///
/// This is a convenience alias-trait: anything `Copy`, comparable, printable,
/// and thread-safe qualifies, so `u64`, `f64`, `bool`, `u32`, … all work.
pub trait Scalar: Copy + PartialEq + Debug + Send + Sync + 'static {}
impl<T: Copy + PartialEq + Debug + Send + Sync + 'static> Scalar for T {}

/// A semiring `(S, ⊕, ⊗, 0, 1)`.
///
/// Laws expected (and checked by property tests for the provided instances):
///
/// * `(S, ⊕, 0)` is a commutative monoid;
/// * `(S, ⊗, 1)` is a monoid;
/// * `⊗` distributes over `⊕`;
/// * `0` annihilates: `0 ⊗ s = s ⊗ 0 = 0`.
///
/// Implementations are zero-sized marker types so they can be passed as type
/// parameters without runtime cost.
pub trait Semiring<T: Scalar>: Copy + Default + Send + Sync + 'static {
    /// The additive identity (and sparse "absent" value).
    fn zero() -> T;
    /// The multiplicative identity.
    fn one() -> T;
    /// The additive operation ⊕.
    fn add(a: T, b: T) -> T;
    /// The multiplicative operation ⊗.
    fn mul(a: T, b: T) -> T;
    /// Whether a value is the additive identity (used to drop explicit zeros).
    fn is_zero(a: T) -> bool {
        a == Self::zero()
    }
}

/// The arithmetic (`+`, `×`) semiring over an integer or float type.
///
/// This is the semiring used for edge counting, degree computation, and
/// triangle counting throughout the workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlusTimes;

macro_rules! impl_plus_times {
    ($($t:ty),*) => {
        $(
            impl Semiring<$t> for PlusTimes {
                fn zero() -> $t { 0 as $t }
                fn one() -> $t { 1 as $t }
                fn add(a: $t, b: $t) -> $t { a + b }
                fn mul(a: $t, b: $t) -> $t { a * b }
            }
        )*
    };
}

impl_plus_times!(u8, u16, u32, u64, u128, usize, i32, i64, i128, f32, f64);

/// The boolean (`∨`, `∧`) semiring: structural graph algebra.
///
/// Adjacency matrices whose entries only record the existence of an edge live
/// here; Kronecker products over this semiring reproduce Weichsel's graph
/// Kronecker product exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring<bool> for BoolOrAnd {
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

/// The tropical (`min`, `+`) semiring over `u64`, with `u64::MAX` as +∞.
///
/// Useful for hop-count style analyses of generated graphs; included to keep
/// the substrate honest about being semiring-generic rather than hard-coding
/// arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring<u64> for MinPlus {
    fn zero() -> u64 {
        u64::MAX
    }
    fn one() -> u64 {
        0
    }
    fn add(a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn mul(a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
}

/// The (`max`, `×`) semiring over `f64` with 0 as the annihilator.
///
/// Handy for most-probable-path style computations on weighted Kronecker
/// models (e.g. stochastic Kronecker initiator matrices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxTimes;

impl Semiring<f64> for MaxTimes {
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_identities() {
        assert_eq!(<PlusTimes as Semiring<u64>>::zero(), 0);
        assert_eq!(<PlusTimes as Semiring<u64>>::one(), 1);
        assert_eq!(<PlusTimes as Semiring<u64>>::add(2, 3), 5);
        assert_eq!(<PlusTimes as Semiring<u64>>::mul(2, 3), 6);
        assert!(<PlusTimes as Semiring<u64>>::is_zero(0));
        assert!(!<PlusTimes as Semiring<u64>>::is_zero(7));
    }

    #[test]
    fn bool_semiring_behaves_like_set_union_intersection() {
        assert!(!<BoolOrAnd as Semiring<bool>>::zero());
        assert!(<BoolOrAnd as Semiring<bool>>::one());
        assert!(<BoolOrAnd as Semiring<bool>>::add(true, false));
        assert!(!<BoolOrAnd as Semiring<bool>>::mul(true, false));
    }

    #[test]
    fn min_plus_identities() {
        assert_eq!(<MinPlus as Semiring<u64>>::zero(), u64::MAX);
        assert_eq!(<MinPlus as Semiring<u64>>::one(), 0);
        assert_eq!(<MinPlus as Semiring<u64>>::add(3, 9), 3);
        assert_eq!(<MinPlus as Semiring<u64>>::mul(3, 9), 12);
        // The annihilator law: ∞ ⊗ x = ∞.
        assert_eq!(<MinPlus as Semiring<u64>>::mul(u64::MAX, 5), u64::MAX);
    }

    #[test]
    fn max_times_identities() {
        assert_eq!(<MaxTimes as Semiring<f64>>::add(0.25, 0.75), 0.75);
        assert_eq!(<MaxTimes as Semiring<f64>>::mul(0.5, 0.5), 0.25);
        assert_eq!(<MaxTimes as Semiring<f64>>::mul(0.0, 0.5), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn check_semiring_laws_u64<S: Semiring<u64>>(
        a: u64,
        b: u64,
        c: u64,
    ) -> Result<(), TestCaseError> {
        prop_assert_eq!(S::add(a, S::zero()), a);
        prop_assert_eq!(S::add(a, b), S::add(b, a));
        prop_assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
        prop_assert_eq!(S::mul(a, S::one()), a);
        prop_assert_eq!(S::mul(S::one(), a), a);
        prop_assert_eq!(S::mul(a, S::zero()), S::zero());
        prop_assert_eq!(S::mul(S::zero(), a), S::zero());
        prop_assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
        prop_assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
        Ok(())
    }

    proptest! {
        #[test]
        fn plus_times_laws(a in 0u64..1u64 << 20, b in 0u64..1u64 << 20, c in 0u64..1u64 << 20) {
            check_semiring_laws_u64::<PlusTimes>(a, b, c)?;
        }

        #[test]
        fn min_plus_laws(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
            check_semiring_laws_u64::<MinPlus>(a, b, c)?;
        }

        #[test]
        fn bool_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
            prop_assert_eq!(BoolOrAnd::add(a, BoolOrAnd::zero()), a);
            prop_assert_eq!(BoolOrAnd::add(a, b), BoolOrAnd::add(b, a));
            prop_assert_eq!(BoolOrAnd::mul(a, BoolOrAnd::one()), a);
            prop_assert_eq!(BoolOrAnd::mul(a, BoolOrAnd::zero()), BoolOrAnd::zero());
            prop_assert_eq!(
                BoolOrAnd::mul(a, BoolOrAnd::add(b, c)),
                BoolOrAnd::add(BoolOrAnd::mul(a, b), BoolOrAnd::mul(a, c))
            );
        }
    }
}
