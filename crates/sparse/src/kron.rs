//! Kronecker products of sparse matrices.
//!
//! Given `A ∈ S^{mA×nA}` and `B ∈ S^{mB×nB}`, the Kronecker product
//! `C = A ⊗ B ∈ S^{mA·mB × nA·nB}` has
//! `C((iA·mB + iB), (jA·nB + jB)) = A(iA, jA) ⊗ B(iB, jB)`.
//!
//! Because the product never combines two entries, `nnz(C) = nnz(A)·nnz(B)`
//! whenever the semiring multiplication of two stored (non-zero) values is
//! itself non-zero, which is the identity the paper's edge-count formula
//! relies on.  The streaming iterator form ([`KronEdgeIter`]) generates the
//! product without materialising it, which is what the per-processor
//! generator uses for graphs whose blocks are still large.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::semiring::{Scalar, Semiring};

/// Dimensions of the Kronecker product of matrices with the given dimensions.
/// Returns `(rows, cols)` as `u128` so callers can detect overflow of `u64`.
pub fn kron_dims(a: (u64, u64), b: (u64, u64)) -> (u128, u128) {
    (a.0 as u128 * b.0 as u128, a.1 as u128 * b.1 as u128)
}

/// Compute the Kronecker product of two COO matrices over a semiring.
///
/// The result dimensions must fit in `u64`; otherwise a
/// [`SparseError::TooLarge`] is returned (at that point the caller should be
/// using the analytic design layer rather than materialising matrices).
pub fn kron_coo<T: Scalar, S: Semiring<T>>(
    a: &CooMatrix<T>,
    b: &CooMatrix<T>,
) -> Result<CooMatrix<T>, SparseError> {
    let (rows, cols) = kron_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
    let nrows = u64::try_from(rows).map_err(|_| SparseError::TooLarge {
        what: "Kronecker product rows",
        requested: rows,
    })?;
    let ncols = u64::try_from(cols).map_err(|_| SparseError::TooLarge {
        what: "Kronecker product cols",
        requested: cols,
    })?;

    let mut out = CooMatrix::with_capacity(nrows, ncols, a.nnz() * b.nnz());
    for (ra, ca, va) in a.iter() {
        for (rb, cb, vb) in b.iter() {
            let val = S::mul(va, vb);
            if !S::is_zero(val) {
                out.push(ra * b.nrows() + rb, ca * b.ncols() + cb, val)?;
            }
        }
    }
    Ok(out)
}

/// Compute the Kronecker product of a sequence of COO matrices, left to right.
///
/// Returns the identity-like 1×1 matrix holding the semiring one for an empty
/// sequence.
pub fn kron_chain<T: Scalar, S: Semiring<T>>(
    matrices: &[CooMatrix<T>],
) -> Result<CooMatrix<T>, SparseError> {
    let mut acc = CooMatrix::from_entries(1, 1, vec![(0, 0, S::one())])?;
    for m in matrices {
        acc = kron_coo::<T, S>(&acc, m)?;
    }
    Ok(acc)
}

/// A streaming iterator over the entries of `A ⊗ B` in row-major-ish order
/// (outer loop over `A`'s entries, inner loop over `B`'s entries).
///
/// Never allocates the product: each `next()` produces one `(row, col, value)`
/// entry.  This is the kernel behind the communication-free generator's
/// "write edges straight to the consumer" mode.
pub struct KronEdgeIter<'a, T, S> {
    a: &'a CooMatrix<T>,
    b: &'a CooMatrix<T>,
    a_pos: usize,
    b_pos: usize,
    _semiring: std::marker::PhantomData<S>,
}

impl<'a, T: Scalar, S: Semiring<T>> KronEdgeIter<'a, T, S> {
    /// Create a streaming iterator over the entries of `a ⊗ b`.
    pub fn new(a: &'a CooMatrix<T>, b: &'a CooMatrix<T>) -> Self {
        KronEdgeIter {
            a,
            b,
            a_pos: 0,
            b_pos: 0,
            _semiring: std::marker::PhantomData,
        }
    }

    /// Total number of entries the iterator will produce (before zero
    /// filtering by the caller).
    pub fn expected_len(&self) -> usize {
        self.a.nnz() * self.b.nnz()
    }

    /// Dimensions of the virtual product matrix.
    pub fn dims(&self) -> (u128, u128) {
        kron_dims(
            (self.a.nrows(), self.a.ncols()),
            (self.b.nrows(), self.b.ncols()),
        )
    }
}

impl<T: Scalar, S: Semiring<T>> Iterator for KronEdgeIter<'_, T, S> {
    type Item = (u64, u64, T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.a_pos >= self.a.nnz() {
                return None;
            }
            if self.b_pos >= self.b.nnz() {
                self.b_pos = 0;
                self.a_pos += 1;
                continue;
            }
            let ra = self.a.row_indices()[self.a_pos];
            let ca = self.a.col_indices()[self.a_pos];
            let va = self.a.values()[self.a_pos];
            let rb = self.b.row_indices()[self.b_pos];
            let cb = self.b.col_indices()[self.b_pos];
            let vb = self.b.values()[self.b_pos];
            self.b_pos += 1;
            let val = S::mul(va, vb);
            if S::is_zero(val) {
                continue;
            }
            return Some((ra * self.b.nrows() + rb, ca * self.b.ncols() + cb, val));
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining =
            (self.a.nnz().saturating_sub(self.a_pos)) * self.b.nnz() - self.b_pos.min(self.b.nnz());
        (0, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolOrAnd, PlusTimes};

    /// Undirected star adjacency matrix with `points + 1` vertices, centre 0.
    fn star(points: u64) -> CooMatrix<u64> {
        let mut edges = Vec::new();
        for leaf in 1..=points {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        CooMatrix::from_edges(points + 1, points + 1, edges).unwrap()
    }

    #[test]
    fn dims_and_nnz_multiply() {
        let a = star(5);
        let b = star(3);
        let c = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        assert_eq!(c.nrows(), 24);
        assert_eq!(c.ncols(), 24);
        assert_eq!(c.nnz(), a.nnz() * b.nnz());
        assert_eq!(c.nnz(), 10 * 6);
    }

    #[test]
    fn entries_follow_index_formula() {
        let a = CooMatrix::from_entries(2, 2, vec![(0, 1, 2u64), (1, 0, 3)]).unwrap();
        let b = CooMatrix::from_entries(2, 2, vec![(0, 0, 5u64), (1, 1, 7)]).unwrap();
        let c = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        // A(0,1)=2 with B(0,0)=5 -> C(0*2+0, 1*2+0) = 10
        assert_eq!(c.get::<PlusTimes>(0, 2), 10);
        // A(0,1)=2 with B(1,1)=7 -> C(1, 3) = 14
        assert_eq!(c.get::<PlusTimes>(1, 3), 14);
        // A(1,0)=3 with B(0,0)=5 -> C(2, 0) = 15
        assert_eq!(c.get::<PlusTimes>(2, 0), 15);
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let i2 = CooMatrix::<u64>::identity(2);
        let i3 = CooMatrix::<u64>::identity(3);
        let c = kron_coo::<u64, PlusTimes>(&i2, &i3).unwrap();
        assert_eq!(c, CooMatrix::<u64>::identity(6));
    }

    #[test]
    fn kron_chain_left_to_right() {
        let mats = vec![star(2), star(3), star(4)];
        let chained = kron_chain::<u64, PlusTimes>(&mats).unwrap();
        let manual = kron_coo::<u64, PlusTimes>(
            &kron_coo::<u64, PlusTimes>(&mats[0], &mats[1]).unwrap(),
            &mats[2],
        )
        .unwrap();
        assert_eq!(chained, manual);
        assert_eq!(chained.nrows(), 3 * 4 * 5);
        assert_eq!(chained.nnz(), 4 * 6 * 8);

        let empty: Vec<CooMatrix<u64>> = Vec::new();
        let unit = kron_chain::<u64, PlusTimes>(&empty).unwrap();
        assert_eq!(unit.nrows(), 1);
        assert_eq!(unit.nnz(), 1);
    }

    #[test]
    fn associativity_of_kron() {
        let a = star(2);
        let b = star(3);
        let c = star(4);
        let left =
            kron_coo::<u64, PlusTimes>(&kron_coo::<u64, PlusTimes>(&a, &b).unwrap(), &c).unwrap();
        let right =
            kron_coo::<u64, PlusTimes>(&a, &kron_coo::<u64, PlusTimes>(&b, &c).unwrap()).unwrap();
        let mut l = left;
        let mut r = right;
        l.sort();
        r.sort();
        assert_eq!(l, r);
    }

    #[test]
    fn bool_semiring_kron() {
        let a = star(3).map_values(|_| true);
        let b = star(2).map_values(|_| true);
        let c = kron_coo::<bool, BoolOrAnd>(&a, &b).unwrap();
        assert_eq!(c.nnz(), 6 * 4);
        assert!(c.values().iter().all(|&v| v));
    }

    #[test]
    fn streaming_iterator_matches_materialised() {
        let a = star(4);
        let b = star(3);
        let mut materialised = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        let iter = KronEdgeIter::<u64, PlusTimes>::new(&a, &b);
        assert_eq!(iter.expected_len(), a.nnz() * b.nnz());
        assert_eq!(iter.dims(), (20, 20));
        let mut streamed = CooMatrix::from_entries(20, 20, iter.collect::<Vec<_>>()).unwrap();
        materialised.sort();
        streamed.sort();
        assert_eq!(materialised, streamed);
    }

    #[test]
    fn too_large_product_is_rejected() {
        let a = CooMatrix::<u64>::new(u64::MAX, u64::MAX);
        let b = CooMatrix::<u64>::new(3, 3);
        assert!(matches!(
            kron_coo::<u64, PlusTimes>(&a, &b),
            Err(SparseError::TooLarge { .. })
        ));
    }

    #[test]
    fn kron_dims_uses_u128() {
        let d = kron_dims((u64::MAX, u64::MAX), (2, 2));
        assert_eq!(d.0, u64::MAX as u128 * 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::semiring::PlusTimes;
    use proptest::prelude::*;

    fn arb_small_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (1u64..6, 1u64..6).prop_flat_map(|(nr, nc)| {
            proptest::collection::vec((0..nr, 0..nc, 1u64..4), 0..12).prop_map(move |es| {
                let mut m = CooMatrix::from_entries(nr, nc, es).unwrap();
                m.sum_duplicates::<PlusTimes>();
                m
            })
        })
    }

    proptest! {
        #[test]
        fn nnz_multiplies(a in arb_small_coo(), b in arb_small_coo()) {
            let c = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
            prop_assert_eq!(c.nnz(), a.nnz() * b.nnz());
        }

        #[test]
        fn dense_kron_agrees(a in arb_small_coo(), b in arb_small_coo()) {
            let c = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
            let da = a.to_dense::<PlusTimes>(100).unwrap();
            let db = b.to_dense::<PlusTimes>(100).unwrap();
            let dc = c.to_dense::<PlusTimes>(10_000).unwrap();
            for (ia, row_a) in da.iter().enumerate() {
                for (ja, &va) in row_a.iter().enumerate() {
                    for (ib, row_b) in db.iter().enumerate() {
                        for (jb, &vb) in row_b.iter().enumerate() {
                            let i = ia * db.len() + ib;
                            let j = ja * row_b.len() + jb;
                            prop_assert_eq!(dc[i][j], va * vb);
                        }
                    }
                }
            }
        }

        #[test]
        fn streaming_matches_materialised(a in arb_small_coo(), b in arb_small_coo()) {
            let mut c = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
            let (rows, cols) = kron_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
            let mut streamed = CooMatrix::from_entries(
                rows as u64,
                cols as u64,
                KronEdgeIter::<u64, PlusTimes>::new(&a, &b).collect::<Vec<_>>(),
            )
            .unwrap();
            c.sort();
            streamed.sort();
            prop_assert_eq!(c, streamed);
        }
    }
}
