//@ path: crates/core/src/under_test.rs
//@ expect: allow-without-reason@6

pub fn used() {}

#[allow(dead_code)]
fn helper() {}
