//! Crash safety end to end: checksummed atomic shards, checkpointed resume,
//! and the deterministic fault-injection harness.
//!
//! The contract under test is the strongest one the pipeline makes: a run
//! interrupted by an injected fault — transient (retried in place) or
//! permanent (quarantined, repaired by [`Pipeline::resume`]) — must end with
//! **byte-identical shard files** and a `==`-equal [`MetricsReport`]
//! compared to the same run never having failed; and a shard corrupted on
//! disk must be caught by checksum, naming the shard, on both the resume
//! and the replay path.

use std::path::{Path, PathBuf};
use std::time::Duration;

use extreme_graphs::core::CoreError;
use extreme_graphs::gen::ReplaySource;
use extreme_graphs::{
    FaultSchedule, FaultySource, KroneckerDesign, KroneckerSource, Pipeline, RetryPolicy, SelfLoop,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extreme_graphs_crash_resume")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn design() -> KroneckerDesign {
    KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap()
}

/// A pipeline over `design` configured identically every time it is built —
/// the determinism `resume` relies on.
fn pipeline(design: &KroneckerDesign, workers: usize) -> extreme_graphs::DesignPipeline<'_> {
    Pipeline::for_design(design)
        .workers(workers)
        .split_index(2)
        .max_c_edges(100_000)
        .chunk_capacity(512)
}

/// The same run over a fault-injecting source.
fn faulty_pipeline<'d>(
    design: &'d KroneckerDesign,
    workers: usize,
    schedule: FaultSchedule,
) -> Pipeline<FaultySource<KroneckerSource<'d>>> {
    let source = KroneckerSource::new(design)
        .split_index(2)
        .max_c_edges(100_000);
    Pipeline::for_source(FaultySource::new(source, schedule))
        .workers(workers)
        .chunk_capacity(512)
}

fn shard_bytes(directory: &Path, extension: &str) -> Vec<(String, Vec<u8>)> {
    let mut shards: Vec<(String, Vec<u8>)> = std::fs::read_dir(directory)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|e| e == extension))
        .map(|path| {
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            )
        })
        .collect();
    shards.sort();
    shards
}

#[test]
fn permanent_fault_quarantines_and_resume_is_bit_identical() {
    let design = design();
    let workers = 4;

    // The reference: the same run, never interrupted.
    let clean_dir = temp_dir("permanent_clean");
    let clean = pipeline(&design, workers).write_binary(&clean_dir).unwrap();
    assert!(clean.is_valid());

    // Kill worker 2 mid-shard, permanently; quarantine instead of failing.
    let crash_dir = temp_dir("permanent_crash");
    let schedule = FaultSchedule::none().with_permanent(2, 100);
    let crashed = faulty_pipeline(&design, workers, schedule)
        .quarantine_failures(true)
        .write_binary(&crash_dir)
        .unwrap();
    assert!(!crashed.is_complete());
    assert_eq!(crashed.failures.len(), 1);
    let failure = &crashed.failures[0];
    assert_eq!(failure.worker, 2);
    assert_eq!(failure.attempts, 1);
    assert!(failure
        .error
        .to_string()
        .contains("injected permanent fault"));
    assert!(failure
        .path
        .as_ref()
        .expect("file terminals name the failed shard")
        .to_string_lossy()
        .contains("block_00002"));
    // The failed worker's shard is absent — not a truncated file that looks
    // complete — and no staging litter survives the abandon.
    assert!(!crash_dir.join("block_00002.kbk").exists());
    assert!(shard_bytes(&crash_dir, "tmp").is_empty());
    // The other three shards are already byte-identical to the clean run's.
    assert_eq!(shard_bytes(&crash_dir, "kbk").len(), 3);
    // The incomplete run cannot match the prediction.
    assert!(!crashed.is_valid());

    // Resume with the *same* (fault-free) configuration: only the missing
    // shard is regenerated.
    let resumed = pipeline(&design, workers).resume(&crash_dir).unwrap();
    assert!(resumed.is_complete());
    assert!(resumed.is_valid());
    assert_eq!(
        shard_bytes(&crash_dir, "kbk"),
        shard_bytes(&clean_dir, "kbk"),
        "resumed shards must be byte-identical to the uninterrupted run"
    );
    assert_eq!(resumed.metrics, clean.metrics);
    assert_eq!(resumed.manifest.shards, clean.manifest.shards);
    assert_eq!(
        resumed.manifest.edges_per_worker,
        clean.manifest.edges_per_worker
    );
    assert!(resumed
        .stats
        .warnings
        .iter()
        .any(|w| w.contains("3 shard(s) verified complete")));

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn transient_fault_retries_in_place_bit_identically() {
    let design = design();
    let workers = 3;

    let clean_dir = temp_dir("transient_clean");
    let clean = pipeline(&design, workers).write_tsv(&clean_dir).unwrap();

    // Worker 1 fails twice at edge 50, then succeeds; three retries cover it.
    let crash_dir = temp_dir("transient_crash");
    let schedule = FaultSchedule::none().with_transient(1, 50, 2);
    let report = faulty_pipeline(&design, workers, schedule.clone())
        .retry_policy(RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        })
        .write_tsv(&crash_dir)
        .unwrap();
    assert!(report.is_complete(), "retries absorb a transient fault");
    assert!(report.is_valid());
    assert!(schedule.is_exhausted());
    assert_eq!(
        shard_bytes(&crash_dir, "tsv"),
        shard_bytes(&clean_dir, "tsv")
    );
    assert_eq!(report.metrics, clean.metrics);

    // Without retries the same fault fails the run outright.
    let fail_dir = temp_dir("transient_no_retry");
    let err = faulty_pipeline(
        &design,
        workers,
        FaultSchedule::none().with_transient(1, 50, 2),
    )
    .write_tsv(&fail_dir)
    .unwrap_err();
    assert!(err.to_string().contains("injected transient fault"));

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&fail_dir).ok();
}

#[test]
fn corrupt_shard_is_detected_on_resume_and_regenerated() {
    let design = design();
    let workers = 3;

    let clean_dir = temp_dir("corrupt_resume_clean");
    let _ = pipeline(&design, workers).write_binary(&clean_dir).unwrap();

    let dir = temp_dir("corrupt_resume");
    let _ = pipeline(&design, workers).write_binary(&dir).unwrap();
    // Flip the low bit of the first payload byte (offset 40, past the v3
    // header): the edge stays in bounds, so only the checksum can tell.
    let shard = dir.join("block_00001.kbk");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes[40] ^= 1;
    std::fs::write(&shard, &bytes).unwrap();

    let resumed = pipeline(&design, workers).resume(&dir).unwrap();
    assert!(resumed.is_valid());
    assert!(
        resumed
            .stats
            .warnings
            .iter()
            .any(|w| w.contains("block_00001.kbk") && w.contains("checksum")),
        "the corrupt shard must be named: {:?}",
        resumed.stats.warnings
    );
    assert_eq!(shard_bytes(&dir, "kbk"), shard_bytes(&clean_dir, "kbk"));

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shard_fails_replay_with_checksum_error_naming_the_shard() {
    let design = design();

    // TSV: turn a value field "1" into "2" — still a perfectly parseable
    // line, so only the recorded checksum can catch it.
    let tsv_dir = temp_dir("corrupt_replay_tsv");
    let _ = pipeline(&design, 2).write_tsv(&tsv_dir).unwrap();
    let shard = tsv_dir.join("block_00000.tsv");
    let text = std::fs::read_to_string(&shard).unwrap();
    let corrupted = text.replacen("\t1\n", "\t2\n", 1);
    assert_ne!(text, corrupted, "the corruption must change the file");
    std::fs::write(&shard, corrupted).unwrap();
    let err = Pipeline::for_source(ReplaySource::from_directory(&tsv_dir).unwrap())
        .workers(2)
        .count()
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("checksum mismatch"), "{message}");
    assert!(message.contains("block_00000.tsv"), "{message}");

    // Binary: flip a payload bit; the v3 header checksum catches it.
    let bin_dir = temp_dir("corrupt_replay_bin");
    let _ = pipeline(&design, 2).write_binary(&bin_dir).unwrap();
    let shard = bin_dir.join("block_00001.kbk");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes[40] ^= 1;
    std::fs::write(&shard, &bytes).unwrap();
    let err = Pipeline::for_source(ReplaySource::from_directory(&bin_dir).unwrap())
        .workers(2)
        .count()
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("checksum mismatch"), "{message}");
    assert!(message.contains("block_00001.kbk"), "{message}");

    // Compressed (v4): flip a byte past the 48-byte header — inside the
    // delta/varint payload — and the streamed replay must fail the same way.
    let kbkz_dir = temp_dir("corrupt_replay_kbkz");
    let _ = pipeline(&design, 2).write_compressed(&kbkz_dir).unwrap();
    let shard = kbkz_dir.join("block_00000.kbkz");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes[60] ^= 1;
    std::fs::write(&shard, &bytes).unwrap();
    let err = Pipeline::for_source(ReplaySource::from_directory(&kbkz_dir).unwrap())
        .workers(2)
        .count()
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("checksum mismatch"), "{message}");
    assert!(message.contains("block_00000.kbkz"), "{message}");

    std::fs::remove_dir_all(&tsv_dir).ok();
    std::fs::remove_dir_all(&bin_dir).ok();
    std::fs::remove_dir_all(&kbkz_dir).ok();
}

#[test]
fn corrupt_compressed_shard_is_detected_on_resume_and_regenerated() {
    let design = design();
    let workers = 3;

    let clean_dir = temp_dir("corrupt_resume_kbkz_clean");
    let _ = pipeline(&design, workers)
        .write_compressed(&clean_dir)
        .unwrap();

    let dir = temp_dir("corrupt_resume_kbkz");
    let _ = pipeline(&design, workers).write_compressed(&dir).unwrap();
    // Flip a payload byte past the 48-byte v4 header: the frames still
    // decode, so only the checksum can tell.
    let shard = dir.join("block_00001.kbkz");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes[60] ^= 1;
    std::fs::write(&shard, &bytes).unwrap();

    let resumed = pipeline(&design, workers).resume(&dir).unwrap();
    assert!(resumed.is_valid());
    assert!(
        resumed
            .stats
            .warnings
            .iter()
            .any(|w| w.contains("block_00001.kbkz") && w.contains("checksum")),
        "the corrupt shard must be named: {:?}",
        resumed.stats.warnings
    );
    assert_eq!(shard_bytes(&dir, "kbkz"), shard_bytes(&clean_dir, "kbkz"));

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_mismatched_configuration() {
    let design = design();
    let dir = temp_dir("resume_mismatch");
    let schedule = FaultSchedule::none().with_permanent(0, 10);
    let _ = faulty_pipeline(&design, 2, schedule)
        .quarantine_failures(true)
        .write_binary(&dir)
        .unwrap();

    // Wrong worker count.
    match pipeline(&design, 3).resume(&dir) {
        Err(CoreError::ResumeMismatch { field, .. }) => assert_eq!(field, "workers"),
        other => panic!("expected a workers mismatch, got {other:?}"),
    }
    // Wrong permutation.
    match pipeline(&design, 2).permute_vertices(7).resume(&dir) {
        Err(CoreError::ResumeMismatch { field, .. }) => assert_eq!(field, "permutation_seed"),
        other => panic!("expected a permutation mismatch, got {other:?}"),
    }
    // Wrong graph entirely.
    let other_design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
    let err = Pipeline::for_design(&other_design)
        .workers(2)
        .resume(&dir)
        .unwrap_err();
    assert!(matches!(err, CoreError::ResumeMismatch { .. }), "{err}");

    // No journal at all.
    let empty = temp_dir("resume_no_journal");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(pipeline(&design, 2).resume(&empty).is_err());

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

mod seeded_faults {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// The tentpole invariant, swept: for any worker count, shard
        /// format, permutation choice, and fault point, a run interrupted by
        /// a permanent fault and then resumed is bit-identical — shard bytes
        /// and metrics report — to the run that never failed.
        #[test]
        fn resume_after_a_fault_is_bit_identical(
            workers in 1usize..5,
            format in 0usize..3,
            permute in any::<bool>(),
            fault_worker in 0usize..5,
            after_edges in 0u64..200,
        ) {
            let fault_worker = fault_worker % workers;
            let design = design();
            let seed = 0xFEEDu64;
            let name = format!(
                "prop_{workers}_{format}_{permute}_{fault_worker}_{after_edges}"
            );

            let clean_dir = temp_dir(&format!("{name}_clean"));
            let mut clean_pipe = pipeline(&design, workers);
            if permute {
                clean_pipe = clean_pipe.permute_vertices(seed);
            }
            let clean = match format {
                0 => clean_pipe.write_tsv(&clean_dir).unwrap(),
                1 => clean_pipe.write_binary(&clean_dir).unwrap(),
                _ => clean_pipe.write_compressed(&clean_dir).unwrap(),
            };

            let crash_dir = temp_dir(&format!("{name}_crash"));
            let schedule = FaultSchedule::none().with_permanent(fault_worker, after_edges);
            let mut crash_pipe =
                faulty_pipeline(&design, workers, schedule).quarantine_failures(true);
            if permute {
                crash_pipe = crash_pipe.permute_vertices(seed);
            }
            let crashed = match format {
                0 => crash_pipe.write_tsv(&crash_dir).unwrap(),
                1 => crash_pipe.write_binary(&crash_dir).unwrap(),
                _ => crash_pipe.write_compressed(&crash_dir).unwrap(),
            };
            prop_assert_eq!(crashed.failures.len(), 1);

            let mut resume_pipe = pipeline(&design, workers);
            if permute {
                resume_pipe = resume_pipe.permute_vertices(seed);
            }
            let resumed = resume_pipe.resume(&crash_dir).unwrap();
            prop_assert!(resumed.is_complete());
            prop_assert!(resumed.is_valid());
            let extension = ["tsv", "kbk", "kbkz"][format];
            prop_assert_eq!(
                shard_bytes(&crash_dir, extension),
                shard_bytes(&clean_dir, extension)
            );
            prop_assert_eq!(&resumed.metrics, &clean.metrics);
            prop_assert_eq!(&resumed.manifest.shards, &clean.manifest.shards);

            std::fs::remove_dir_all(&clean_dir).ok();
            std::fs::remove_dir_all(&crash_dir).ok();
        }
    }
}
