//! Out-of-core shard driver throughput.
//!
//! The shard driver is the path that removes the `max_total_edges` ceiling:
//! edges stream from the Kronecker expansion through per-worker sinks and a
//! streaming degree histogram, and nothing proportional to the edge count is
//! ever held in memory.  This bench measures what that costs (and buys)
//! against the materialising [`ParallelGenerator`]:
//!
//! * `driver_counting_w{N}` — full driver runs (generation + streamed
//!   histogram + validation-ready measurement) with counting sinks, across
//!   worker counts: the Figure-3 sweep as the driver runs it.
//! * `materialise_generator_w{N}` — the materialising generator on the same
//!   design, for the memory-bound comparison.
//! * `driver_tsv_w4` / `driver_binary_w4` (small design) — the historical
//!   disk points.  At 276 K edges these are dominated by per-run fixed
//!   costs (shard fsyncs, directory syncs, the manifest), so they price a
//!   whole small run, not the sink.
//! * `driver_binary_w*` / `driver_compressed_w*` (full design) — the sink
//!   throughput measures: 13.8 M edges amortise the fixed costs, so these
//!   numbers track bytes-per-edge × disk bandwidth + checksum/encode
//!   compute.  The compressed (v4 delta/varint) sink writes ~3.3x fewer
//!   bytes than the raw interleaved format, which is exactly what lifts it
//!   past the disk's raw-format ceiling.
//!
//! Results are printed and written as machine-readable JSON to
//! `BENCH_shard_driver.json` at the workspace root, so successive PRs can
//! track the trajectory.  Pass `--smoke` for a seconds-long single-sample
//! sanity sweep (used by CI) that exercises every sink but records nothing.

// The legacy driver and generator entry points are this benchmark's
// subject: they are measured against each other on purpose.
#![allow(deprecated)]

use std::path::Path;
use std::time::{Duration, Instant};

use kron_bench::provenance;
use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{DriverConfig, GeneratorConfig, ParallelGenerator, ShardDriver};

/// The paper's `B` factor from Figures 3/4 (13,824,000 edges) for in-memory
/// paths and the full-design disk sinks, and the same structure minus the
/// last star (276,480 edges) for the historical small disk points.
const BENCH_POINTS: &[u64] = &[3, 4, 5, 9, 16, 25];
const DISK_POINTS: &[u64] = &[3, 4, 5, 9, 16];
const BENCH_SPLIT: usize = 2;
const SAMPLES: usize = 5;

struct Measurement {
    name: String,
    median: Duration,
    edges_per_sec: f64,
}

fn measure(
    name: impl Into<String>,
    edges: u64,
    samples: usize,
    mut pass: impl FnMut() -> u64,
) -> Measurement {
    let name = name.into();
    assert_eq!(pass(), edges, "{name} produced the wrong number of edges");
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let started = Instant::now();
            criterion::black_box(pass());
            started.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    Measurement {
        name,
        median,
        edges_per_sec: edges as f64 / median.as_secs_f64(),
    }
}

fn driver(workers: usize) -> ShardDriver {
    ShardDriver::new(DriverConfig {
        workers,
        max_c_edges: 1 << 20,
        max_b_edges: 1 << 24,
        ..DriverConfig::default()
    })
}

/// Total size on disk of the `extension` shards under `dir`, for the
/// compression ratio.  The directory is shared across sink families, so
/// filtering by extension keeps one family's leftovers out of another's
/// byte count.
fn shard_bytes(dir: &Path, extension: &str) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == extension))
                .filter_map(|p| p.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let samples = if smoke { 1 } else { SAMPLES };

    let design =
        KroneckerDesign::from_star_points(BENCH_POINTS, SelfLoop::None).expect("valid design");
    let edges = design.edges().to_u64().expect("bench scale");
    let disk_design =
        KroneckerDesign::from_star_points(DISK_POINTS, SelfLoop::None).expect("valid design");
    let disk_edges = disk_design.edges().to_u64().expect("bench scale");
    let shard_dir = std::env::temp_dir().join("kron_bench_shard_driver");

    if smoke {
        // One fast pass over every path: generation correct, every sink
        // writes, rates are nonzero.  No JSON — a sanity gate, not a record.
        let run = driver(2)
            .run_counting(&disk_design, BENCH_SPLIT)
            .expect("factors fit");
        assert!(run.validate().is_exact_match());
        for (sink, result) in [
            (
                "tsv",
                driver(2).run_tsv(&disk_design, BENCH_SPLIT, &shard_dir),
            ),
            (
                "binary",
                driver(2).run_binary(&disk_design, BENCH_SPLIT, &shard_dir),
            ),
            (
                "compressed",
                driver(2).run_compressed(&disk_design, BENCH_SPLIT, &shard_dir),
            ),
        ] {
            let (run, files) = result.expect("shards write");
            assert_eq!(run.stats.total_edges, disk_edges, "{sink} lost edges");
            assert_eq!(files.files.len(), 2, "{sink} shard count");
            let rate = disk_edges as f64 / run.stats.seconds.max(1e-9) / 1e6;
            assert!(
                rate > 0.1,
                "{sink} sink implausibly slow: {rate:.2} Medges/s"
            );
            println!("  smoke {sink:<10} {rate:>9.1} Medges/s");
        }
        std::fs::remove_dir_all(&shard_dir).ok();
        println!("shard_driver --smoke: ok ({disk_edges} edges per pass)");
        return;
    }

    println!("shard_driver: {edges} edges per pass");

    let mut results: Vec<Measurement> = Vec::new();
    let worker_counts = [1usize, 2, 4, 8];
    for &workers in &worker_counts {
        results.push(measure(
            format!("driver_counting_w{workers}"),
            edges,
            samples,
            || {
                let run = driver(workers)
                    .run_counting(&design, BENCH_SPLIT)
                    .expect("factors fit");
                assert!(run.validate().is_exact_match());
                run.stats.total_edges
            },
        ));
    }
    for &workers in &[1usize, 4] {
        let generator = ParallelGenerator::new(GeneratorConfig {
            workers,
            max_c_edges: 1 << 20,
            max_total_edges: 50_000_000,
        });
        results.push(measure(
            format!("materialise_generator_w{workers}"),
            edges,
            samples,
            || {
                let graph = generator
                    .generate_with_split(&design, BENCH_SPLIT)
                    .expect("fits in memory");
                graph.edge_count()
            },
        ));
    }

    // Historical small disk points: fixed-cost-dominated on purpose (the
    // price of a whole small run), kept for trajectory continuity.
    results.push(measure(
        format!("driver_tsv_w4_{disk_edges}e"),
        disk_edges,
        samples,
        || {
            let (run, _) = driver(4)
                .run_tsv(&disk_design, BENCH_SPLIT, &shard_dir)
                .expect("shards write");
            run.stats.total_edges
        },
    ));
    results.push(measure(
        format!("driver_binary_w4_{disk_edges}e"),
        disk_edges,
        samples,
        || {
            let (run, _) = driver(4)
                .run_binary(&disk_design, BENCH_SPLIT, &shard_dir)
                .expect("shards write");
            run.stats.total_edges
        },
    ));

    // Full-design disk sinks: 50x more edges amortise the per-run fixed
    // costs, so these measure the sinks themselves.
    results.push(measure(
        format!("driver_binary_w4_{edges}e"),
        edges,
        samples,
        || {
            let (run, _) = driver(4)
                .run_binary(&design, BENCH_SPLIT, &shard_dir)
                .expect("shards write");
            run.stats.total_edges
        },
    ));
    // A fresh directory for the compressed family, so the binary runs'
    // 221 MB of `.kbk` shards don't sit under the page cache's writeback
    // while the compressed sinks are being timed.
    std::fs::remove_dir_all(&shard_dir).ok();
    let mut compressed_bytes = 0u64;
    for &workers in &[1usize, 4] {
        results.push(measure(
            format!("driver_compressed_w{workers}_{edges}e"),
            edges,
            samples,
            || {
                let (run, _) = driver(workers)
                    .run_compressed(&design, BENCH_SPLIT, &shard_dir)
                    .expect("shards write");
                compressed_bytes = shard_bytes(&shard_dir, "kbkz");
                run.stats.total_edges
            },
        ));
    }
    // The ratio prices the raw interleaved layout (16 bytes/edge) against
    // the compressed shards as stored (headers included).
    let compression_ratio = (16 * edges) as f64 / compressed_bytes.max(1) as f64;
    std::fs::remove_dir_all(&shard_dir).ok();

    for m in &results {
        println!(
            "  {:<32} median {:>12?}  {:>9.1} Medges/s",
            m.name,
            m.median,
            m.edges_per_sec / 1e6
        );
    }
    let rate_of = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("no measurement named {name}"))
            .edges_per_sec
    };
    let scaling_1_to_4 = rate_of("driver_counting_w4") / rate_of("driver_counting_w1");
    let driver_vs_materialise = rate_of("driver_counting_w4") / rate_of("materialise_generator_w4");
    let compressed_vs_binary = rate_of(&format!("driver_compressed_w4_{edges}e"))
        / rate_of(&format!("driver_binary_w4_{edges}e"));
    println!("  driver counting scaling 1 -> 4 workers:   {scaling_1_to_4:.2}x");
    println!("  driver(4) vs materialising generator(4):  {driver_vs_materialise:.2}x");
    println!("  compressed vs binary sink (w4, full):     {compressed_vs_binary:.2}x");
    println!("  compression ratio (raw 16 B/edge vs disk): {compression_ratio:.2}x");

    let json_entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"edges_per_sec\": {:.0}}}",
                m.name,
                m.median.as_secs_f64(),
                m.edges_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"shard_driver\",\n  \"design\": {{\"points\": {:?}, \"split_index\": {}, \"edges\": {}}},\n  \"samples\": {},\n  {},\n  \"results\": [\n{}\n  ],\n  \"driver_counting_scaling_1_to_4\": {:.3},\n  \"driver_vs_materialise_w4\": {:.3},\n  \"compressed_vs_binary_w4\": {:.3},\n  \"compression_ratio\": {:.3}\n}}\n",
        BENCH_POINTS,
        BENCH_SPLIT,
        edges,
        samples,
        provenance::json_fields(),
        json_entries.join(",\n"),
        scaling_1_to_4,
        driver_vs_materialise,
        compressed_vs_binary,
        compression_ratio
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard_driver.json");
    std::fs::write(out_path, &json).expect("write BENCH_shard_driver.json");
    println!("wrote {out_path}");
}
