//! Vendored subset of the `proptest` API.
//!
//! The build environment has no route to a crates registry, so this crate
//! implements the property-testing surface the workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range / tuple /
//! `any` / [`Just`] / `prop_oneof!` strategies, `collection::vec`, and the
//! `proptest!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic xoshiro-style RNG, so failures
//! reproduce across runs.  Integer strategies mix uniform draws with the
//! classic edge values (0, 1, extremes).  Failing cases are reported with the
//! formatted assertion message; there is no shrinking.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range has no values");
        // Multiply-shift; the slight bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        strategy::FlatMap { base: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build a union over at least one option.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }
}

pub use strategy::Just;

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range has no values");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range has no values");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

sint_range_strategy!(i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range has no values");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value, mixing uniform draws with edge values.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // One draw in eight lands on a classic boundary value.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(<$t>::MIN)];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    let mut wide = [0u8; 16];
                    let lo = rng.next_u64().to_le_bytes();
                    let hi = rng.next_u64().to_le_bytes();
                    wide[..8].copy_from_slice(&lo);
                    wide[8..].copy_from_slice(&hi);
                    <$t>::from_le_bytes(
                        wide[..std::mem::size_of::<$t>()].try_into().expect("sized"),
                    )
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Error type produced by failed `prop_assert*!` macros; helper functions
    /// return `Result<(), TestCaseError>` so `?` propagates failures.
    pub type TestCaseError = String;

    /// Controls how many cases `proptest!` runs per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Everything needed to write `proptest!` properties.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Strategy,
    };
}

/// Run named properties over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // The closure gives `prop_assert*!` / `?` an early-return
                // target; calling it in place is the point.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed at case {case}: {message}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (0usize..5).generate(&mut rng);
            assert!(s < 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn map_and_flat_map_compose(v in (1u64..50).prop_flat_map(|n| (0u64..n).prop_map(move |k| (n, k)))) {
            let (n, k) = v;
            prop_assert!(k < n, "k={k} must be below n={n}");
        }

        #[test]
        fn tuples_and_oneof(pair in (0u64..4, prop_oneof![Just(1u8), Just(2u8)])) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 == 1u8 || pair.1 == 2u8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_respected(x in any::<u64>()) {
            let _ = x;
        }
    }
}
