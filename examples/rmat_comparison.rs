//! Side-by-side comparison of the exact Kronecker generator with the R-MAT
//! baseline at the same scale — both running through the *same* generic
//! `Pipeline` terminals: structural cleanliness, degree-distribution
//! exactness, and the cost of knowing the properties.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rmat_comparison
//! ```

use std::time::Instant;

use extreme_graphs::core::validate::measure_properties;
use extreme_graphs::rmat::{measure_edge_list, RmatParams, RmatSource};
use extreme_graphs::{KroneckerDesign, Pipeline, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick designs of comparable size: the Kronecker design below has
    // 530,400 vertices and 13,824,000 edges (the paper's B factor); R-MAT at
    // scale 19 / edge factor 16 requests 8,388,608 edge samples over 524,288
    // vertices.
    let kron_points = [3u64, 4, 5, 9, 16, 25];
    let rmat_params = RmatParams::graph500(19);

    // --- Kronecker ----------------------------------------------------------
    println!("=== exact Kronecker generator ===");
    let design = KroneckerDesign::from_star_points(&kron_points, SelfLoop::None)?;
    let predict_start = Instant::now();
    let properties = design.properties();
    let predict_elapsed = predict_start.elapsed();
    println!("properties known before generation (computed in {predict_elapsed:?}):");
    println!("{properties}");

    let generate_start = Instant::now();
    let report = Pipeline::for_design(&design)
        .workers(8)
        .max_c_edges(200_000)
        .collect_coo()?;
    let generate_elapsed = generate_start.elapsed();
    println!(
        "\ngenerated {} edges in {:?} ({:.1} Medges/s), per-worker imbalance {} edges",
        report.edge_count(),
        generate_elapsed,
        report.stats.edges_per_second() / 1e6,
        report.stats.imbalance(),
    );
    let assembled = report.assemble();
    let measured = measure_properties(&assembled)?;
    println!(
        "structural artefacts: {} self-loops, {} duplicate edges, {} empty vertices",
        measured.self_loops, 0, 0,
    );
    println!(
        "measured degree distribution equals prediction: {}",
        measured.degree_distribution == properties.degree_distribution
    );

    // --- R-MAT through the same pipeline ------------------------------------
    println!("\n=== R-MAT baseline (Graph500 parameters, scale 19) ===");
    println!("properties known before generation: vertex and sample counts only —");
    println!("everything else must be measured afterwards.");
    let rmat_start = Instant::now();
    let rmat_report = Pipeline::for_source(RmatSource::new(rmat_params, 20180304)?)
        .workers(8)
        .collect_coo()?;
    let rmat_elapsed = rmat_start.elapsed();
    assert!(
        rmat_report.is_valid(),
        "the predictable fields (counts) must match"
    );
    assert!(
        rmat_report.predicted.is_none(),
        "R-MAT has no exact property sheet"
    );
    println!(
        "manifest records source \"{}\" with seed {:?}",
        rmat_report.manifest.source, rmat_report.manifest.source_seed,
    );
    let edges: Vec<(u64, u64)> = rmat_report
        .outputs
        .iter()
        .flat_map(|block| block.iter().map(|(r, c, _)| (r, c)))
        .collect();
    let stats = measure_edge_list(rmat_params.vertices(), &edges);
    println!(
        "sampled {} edges in {:?}; after cleaning: {} unique edges ({:.1}% of samples wasted)",
        stats.raw_edges,
        rmat_elapsed,
        stats.unique_edges,
        stats.waste_fraction() * 100.0,
    );
    println!(
        "structural artefacts: {} self-loop samples, {} duplicate samples, {} empty vertices",
        stats.self_loops,
        stats.raw_edges - stats.unique_edges - stats.self_loops,
        stats.empty_vertices,
    );
    println!(
        "measured max degree {} and fitted power-law slope {:.3} — only known after generation",
        stats.max_degree,
        stats.alpha().unwrap_or(f64::NAN),
    );

    // --- the permutation stage, shared by both workflows --------------------
    println!("\n=== O(1)-memory vertex permutation (shared stage) ===");
    let permuted = Pipeline::for_design(&design)
        .workers(8)
        .max_c_edges(200_000)
        .permute_vertices(0x5EED)
        .count()?;
    assert!(
        permuted.is_valid(),
        "relabelling is degree-preserving, so validation still passes"
    );
    println!(
        "permuted Kronecker run still validates exactly (seed {:?} in the manifest): {}",
        permuted.manifest.permutation_seed,
        permuted.is_valid(),
    );

    println!("\nsummary:");
    println!("  Kronecker: properties exact and known up front; graph is clean by construction.");
    println!("  R-MAT:     properties approximate and only known after generating and measuring;");
    println!("             output needs de-duplication, loop removal, and re-indexing first.");
    println!("  Both now stream through one Pipeline: same sinks, validation, and manifests.");

    Ok(())
}
