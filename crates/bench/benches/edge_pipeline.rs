//! Per-edge versus chunked edge-pipeline throughput.
//!
//! The paper's headline metric (Figure 3) is raw edge-generation rate.  In a
//! real pipeline the generated edges cross an abstraction boundary into a
//! sink the generator cannot see through — a TSV writer, a binary shard
//! writer, a socket, a counting analytic.  That boundary is modelled here as
//! `#[inline(never)]` consumer functions (a devirtualizable closure would
//! let the optimizer fuse the sink into the generation loop, which no real
//! sink allows).  The per-edge API pays the opaque call, and the lost
//! vectorization behind it, for *every* edge; the chunked API pays it once
//! per 64 Ki-edge [`EdgeChunk`] and hands the sink a slice it can process
//! in a tight local loop.  This bench measures exactly that difference on
//! one core, plus the equivalent materialising comparison:
//!
//! * `per_edge_stream` — the seed's streaming loop calling the opaque sink
//!   per edge.
//! * `chunked_stream` — [`kron_gen::stream_block_edges_into`] flushing
//!   whole chunks to the same sink boundary.
//! * `count_fast_path` — [`kron_gen::count_block_edges`], the closure-free
//!   counting loop behind `count_edges_streaming` (no sink at all).
//! * `per_edge_materialise` / `bulk_materialise` — bounds-checked
//!   `CooMatrix::push` per edge versus the bulk `append_translated` behind
//!   `GraphBlock::generate`, into a reused COO block.
//!
//! Results are printed and written as machine-readable JSON to
//! `BENCH_edge_pipeline.json` at the workspace root, so successive PRs can
//! track the trajectory.

use std::time::{Duration, Instant};

use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{count_block_edges, stream_block_edges_into, EdgeChunk};
use kron_sparse::{CooMatrix, PlusTimes};

/// The paper's `B` factor from Figures 3/4: `M-hat{3,4,5,9,16,25}`,
/// 13,824,000 edges — big enough for stable single-core timings, small
/// enough to materialise.
const BENCH_POINTS: &[u64] = &[3, 4, 5, 9, 16, 25];
const BENCH_SPLIT: usize = 2;
const SAMPLES: usize = 7;

struct Measurement {
    name: String,
    median: Duration,
    edges_per_sec: f64,
}

fn measure(name: impl Into<String>, edges: u64, mut pass: impl FnMut() -> u64) -> Measurement {
    let name = name.into();
    // Warm-up pass also validates the produced edge count.
    assert_eq!(pass(), edges, "{name} produced the wrong number of edges");
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let started = Instant::now();
            criterion::black_box(pass());
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    Measurement {
        name,
        median,
        edges_per_sec: edges as f64 / median.as_secs_f64(),
    }
}

/// The seed's per-edge streaming loop, feeding the opaque sink boundary.
fn per_edge_stream_baseline(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    sink: &mut CheckSink,
) -> u64 {
    let mut produced = 0u64;
    for &(rb, cb, _) in b_triples {
        for (rc, cc, _) in c.iter() {
            consume_edge(sink, rb * c.nrows() + rc, cb * c.ncols() + cc);
            produced += 1;
        }
    }
    produced
}

/// The sink both streaming variants feed: two independent accumulators over
/// every edge (a row sum and a column xor), cheap enough to expose the
/// pipeline overhead rather than hide it, order-insensitive, and impossible
/// to optimize away.
#[derive(Default)]
struct CheckSink {
    row_sum: u64,
    col_xor: u64,
}

impl CheckSink {
    fn digest(&self) -> u64 {
        self.row_sum ^ self.col_xor
    }
}

/// The per-edge side of the sink boundary.  `#[inline(never)]` keeps the
/// boundary opaque, as it is for any real sink.
#[inline(never)]
fn consume_edge(sink: &mut CheckSink, row: u64, col: u64) {
    sink.row_sum = sink.row_sum.wrapping_add(row);
    sink.col_xor ^= col;
}

/// The chunked side of the same boundary: one opaque call per chunk, with a
/// local loop the compiler vectorizes.
#[inline(never)]
fn consume_chunk(sink: &mut CheckSink, edges: &[(u64, u64)]) {
    for &(row, col) in edges {
        sink.row_sum = sink.row_sum.wrapping_add(row);
        sink.col_xor ^= col;
    }
}

/// Time the per-edge-push and bulk-extend materialisations of the same
/// block into a preallocated, reused output matrix.
fn materialise_pair(
    label: &str,
    triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    vertices: u64,
    edges: u64,
) -> (Measurement, Measurement) {
    let mut out = CooMatrix::with_capacity(vertices, vertices, triples.len() * c.nnz());
    let per_edge = measure(format!("per_edge_materialise_{label}"), edges, || {
        out.clear();
        for &(rb, cb, vb) in triples {
            for (rc, cc, vc) in c.iter() {
                out.push(rb * c.nrows() + rc, cb * c.ncols() + cc, vb * vc)
                    .expect("kron indices are within the product dimensions");
            }
        }
        out.nnz() as u64
    });
    let bulk = measure(format!("bulk_materialise_{label}"), edges, || {
        out.clear();
        let (c_rows, c_cols, c_vals) = (c.row_indices(), c.col_indices(), c.values());
        for &(rb, cb, vb) in triples {
            out.append_translated::<PlusTimes>(
                rb * c.nrows(),
                cb * c.ncols(),
                vb,
                c_rows,
                c_cols,
                c_vals,
            );
        }
        out.nnz() as u64
    });
    (per_edge, bulk)
}

fn main() {
    let design =
        KroneckerDesign::from_star_points(BENCH_POINTS, SelfLoop::None).expect("valid design");
    let (b_design, c_design) = design.split(BENCH_SPLIT).expect("valid split");
    let b = b_design.realize_raw(50_000_000).expect("B fits");
    let c = c_design.realize_raw(50_000_000).expect("C fits");
    let triples = kron_gen::partition::csc_ordered_triples(&b);
    let edges = design.edges().to_u64().expect("bench scale");
    let vertices = design.vertices().to_u64().expect("bench scale");

    println!("edge_pipeline: {edges} edges per pass, single worker");

    let mut reference_digest = None;
    let mut check_digest = |name: &str, digest: u64| match reference_digest {
        None => reference_digest = Some(digest),
        Some(expected) => {
            assert_eq!(digest, expected, "{name} saw a different edge stream");
        }
    };

    let per_edge_stream = measure("per_edge_stream", edges, || {
        let mut sink = CheckSink::default();
        let produced = per_edge_stream_baseline(&triples, &c, &mut sink);
        check_digest("per_edge_stream", sink.digest());
        produced
    });

    let mut chunk = EdgeChunk::with_default_capacity();
    let chunked_stream = measure("chunked_stream", edges, || {
        let mut sink = CheckSink::default();
        // Same opaque boundary as the per-edge baseline, crossed once per
        // chunk instead of once per edge.
        let produced = stream_block_edges_into(&triples, &c, &mut chunk, |slice| {
            consume_chunk(&mut sink, slice)
        });
        check_digest("chunked_stream", sink.digest());
        produced
    });

    let count_fast_path = measure("count_fast_path", edges, || count_block_edges(&triples, &c));

    // Materialising comparison at two scales.  Both variants write into a
    // preallocated, reused block so the measurement is the append loop, not
    // first-touch page faults.  At the full 13.8M-edge scale the 331 MB of
    // output streams to DRAM and both loops are store-bandwidth-bound; the
    // cache-resident scale (the same structure minus the last star,
    // 276,480 edges / 6.6 MB) exposes the per-edge instruction overhead the
    // bulk path removes.
    let (per_edge_materialise, bulk_materialise) =
        materialise_pair("dram", &triples, &c, vertices, edges);

    let small_design =
        KroneckerDesign::from_star_points(&BENCH_POINTS[..BENCH_POINTS.len() - 1], SelfLoop::None)
            .expect("valid design");
    let (small_b_design, small_c_design) = small_design.split(BENCH_SPLIT).expect("valid split");
    let small_b = small_b_design.realize_raw(50_000_000).expect("B fits");
    let small_c = small_c_design.realize_raw(50_000_000).expect("C fits");
    let small_triples = kron_gen::partition::csc_ordered_triples(&small_b);
    let small_edges = small_design.edges().to_u64().expect("bench scale");
    let small_vertices = small_design.vertices().to_u64().expect("bench scale");
    let (per_edge_materialise_l3, bulk_materialise_l3) =
        materialise_pair("l3", &small_triples, &small_c, small_vertices, small_edges);

    let results = [
        per_edge_stream,
        chunked_stream,
        count_fast_path,
        per_edge_materialise,
        bulk_materialise,
        per_edge_materialise_l3,
        bulk_materialise_l3,
    ];
    for m in &results {
        println!(
            "  {:<22} median {:>12?}  {:>9.1} Medges/s",
            m.name,
            m.median,
            m.edges_per_sec / 1e6
        );
    }
    let speedup_stream = results[1].edges_per_sec / results[0].edges_per_sec;
    let speedup_materialise = results[4].edges_per_sec / results[3].edges_per_sec;
    let speedup_materialise_l3 = results[6].edges_per_sec / results[5].edges_per_sec;
    println!("  chunked_stream vs per_edge_stream:              {speedup_stream:.2}x");
    println!("  bulk_materialise vs per_edge_materialise (dram): {speedup_materialise:.2}x");
    println!("  bulk_materialise vs per_edge_materialise (l3):   {speedup_materialise_l3:.2}x");

    let json_entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"edges_per_sec\": {:.0}}}",
                m.name,
                m.median.as_secs_f64(),
                m.edges_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"edge_pipeline\",\n  \"design\": {{\"points\": {:?}, \"split_index\": {}, \"edges\": {}}},\n  \"samples\": {},\n  \"results\": [\n{}\n  ],\n  \"speedup_chunked_vs_per_edge_stream\": {:.3},\n  \"speedup_bulk_vs_per_edge_materialise_dram\": {:.3},\n  \"speedup_bulk_vs_per_edge_materialise_l3\": {:.3}\n}}\n",
        BENCH_POINTS,
        BENCH_SPLIT,
        edges,
        SAMPLES,
        json_entries.join(",\n"),
        speedup_stream,
        speedup_materialise,
        speedup_materialise_l3
    );
    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_edge_pipeline.json"
    );
    std::fs::write(out_path, &json).expect("write BENCH_edge_pipeline.json");
    println!("wrote {out_path}");
}
