//! Exact degree distributions.
//!
//! A degree distribution is the map `d ↦ n(d)` from vertex degree to the
//! number of vertices with that degree.  The paper's central observation is
//! that the degree distribution of a Kronecker product is the Kronecker
//! product of the constituent distributions:
//!
//! ```text
//! n_A(d) = ⊗_k n_{A_k}(d)
//! ```
//!
//! i.e. every way of choosing one degree `d_k` from each constituent
//! contributes `∏ n_k(d_k)` vertices of degree `∏ d_k`.  Both degrees and
//! counts are [`BigUint`]s so distributions of 10^30-edge graphs stay exact.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use kron_bignum::{BigRatio, BigUint};

/// An exact degree distribution: a sorted map from degree to vertex count.
///
/// Degrees with a zero count are never stored.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegreeDistribution {
    counts: BTreeMap<BigUint, BigUint>,
}

impl DegreeDistribution {
    /// An empty distribution.
    pub fn new() -> Self {
        DegreeDistribution {
            counts: BTreeMap::new(),
        }
    }

    /// Build a distribution from `(degree, count)` pairs, accumulating
    /// duplicates.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (BigUint, BigUint)>,
    {
        let mut dist = DegreeDistribution::new();
        for (d, n) in pairs {
            dist.add(d, n);
        }
        dist
    }

    /// Build from a measured `u64` histogram (degree → count), skipping
    /// zero-count entries.
    pub fn from_histogram(hist: &BTreeMap<u64, u64>) -> Self {
        let mut dist = DegreeDistribution::new();
        for (&d, &n) in hist {
            if n > 0 {
                dist.add(BigUint::from(d), BigUint::from(n));
            }
        }
        dist
    }

    /// Add `count` vertices of degree `degree` (accumulating).
    pub fn add(&mut self, degree: BigUint, count: BigUint) {
        if count.is_zero() {
            return;
        }
        let entry = self.counts.entry(degree).or_insert_with(BigUint::zero);
        *entry = entry.clone() + count;
    }

    /// Remove `count` vertices of degree `degree`.
    ///
    /// # Panics
    /// Panics if fewer than `count` vertices of that degree exist — that
    /// would mean a correction formula is being applied to the wrong design.
    pub fn subtract(&mut self, degree: &BigUint, count: &BigUint) {
        let current = self.count(degree);
        let remaining = current
            .checked_sub(count)
            // lint:allow(no-expect) -- the distribution accounting above proves the bucket holds at least this many vertices
            .expect("cannot remove more vertices of a degree than the distribution contains");
        if remaining.is_zero() {
            self.counts.remove(degree);
        } else {
            self.counts.insert(degree.clone(), remaining);
        }
    }

    /// The number of vertices of the given degree (zero if absent).
    pub fn count(&self, degree: &BigUint) -> BigUint {
        self.counts
            .get(degree)
            .cloned()
            .unwrap_or_else(BigUint::zero)
    }

    /// Number of distinct degrees present.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate over `(degree, count)` pairs in increasing degree order.
    pub fn iter(&self) -> impl Iterator<Item = (&BigUint, &BigUint)> {
        self.counts.iter()
    }

    /// The distribution as a sorted vector of `(degree, count)` pairs.
    pub fn to_pairs(&self) -> Vec<(BigUint, BigUint)> {
        self.counts
            .iter()
            .map(|(d, n)| (d.clone(), n.clone()))
            .collect()
    }

    /// Total number of vertices covered, `Σ_d n(d)`.
    pub fn total_vertices(&self) -> BigUint {
        let mut total = BigUint::zero();
        for n in self.counts.values() {
            total += n;
        }
        total
    }

    /// Total number of edge endpoints, `Σ_d d·n(d)` — equal to the number of
    /// stored adjacency entries for the row-nnz degree convention.
    pub fn total_edge_endpoints(&self) -> BigUint {
        let mut total = BigUint::zero();
        for (d, n) in &self.counts {
            total += d * n;
        }
        total
    }

    /// Largest degree present (`None` for an empty distribution).
    pub fn max_degree(&self) -> Option<&BigUint> {
        self.counts.keys().next_back()
    }

    /// Smallest degree present (`None` for an empty distribution).
    pub fn min_degree(&self) -> Option<&BigUint> {
        self.counts.keys().next()
    }

    /// The Kronecker product of two distributions: every pair of degrees
    /// multiplies and every pair of counts multiplies.
    pub fn kron(&self, other: &DegreeDistribution) -> DegreeDistribution {
        let mut out = DegreeDistribution::new();
        for (d_a, n_a) in &self.counts {
            for (d_b, n_b) in &other.counts {
                out.add(d_a * d_b, n_a * n_b);
            }
        }
        out
    }

    /// The Kronecker product of a sequence of distributions.  Returns the
    /// "unit" distribution (a single vertex of degree 1) for an empty slice,
    /// which is the identity of [`DegreeDistribution::kron`].
    pub fn kron_all(distributions: &[DegreeDistribution]) -> DegreeDistribution {
        let mut acc = DegreeDistribution::from_pairs([(BigUint::one(), BigUint::one())]);
        for d in distributions {
            acc = acc.kron(d);
        }
        acc
    }

    /// Apply the paper's final self-loop-removal adjustment: one vertex of
    /// degree `loop_degree` loses its self-loop, so `n(loop_degree)` drops by
    /// one and `n(loop_degree − 1)` gains one.
    pub fn remove_self_loop_at(&mut self, loop_degree: &BigUint) {
        let one = BigUint::one();
        self.subtract(loop_degree, &one);
        let reduced = loop_degree
            .checked_sub(&one)
            // lint:allow(no-expect) -- a vertex hosting a self-loop has degree at least one by construction of the distribution
            .expect("self-loop vertex must have degree at least one");
        if !reduced.is_zero() {
            self.add(reduced, one);
        }
    }

    /// Whether every `(d, n(d))` pair lies exactly on the perfect power-law
    /// curve `n(d) = c / d` for a single constant `c` (slope `α = 1`), which
    /// is the exact law star-product designs satisfy when all degree products
    /// are unique.  Returns the constant when it holds.
    pub fn perfect_power_law_constant(&self) -> Option<BigUint> {
        let mut constant: Option<BigUint> = None;
        for (d, n) in &self.counts {
            let product = d * n;
            match &constant {
                None => constant = Some(product),
                Some(c) if *c == product => {}
                Some(_) => return None,
            }
        }
        constant
    }

    /// Least-squares fit of the power-law slope `α` in
    /// `log n(d) = log c − α·log d`, using every support point.
    ///
    /// Returns `None` when fewer than two distinct degrees are present.
    pub fn fit_alpha(&self) -> Option<f64> {
        if self.support_size() < 2 {
            return None;
        }
        let points: Vec<(f64, f64)> = self
            .counts
            .iter()
            .filter_map(|(d, n)| Some((d.log10()?, n.log10().unwrap_or(0.0))))
            .collect();
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let sum_x: f64 = points.iter().map(|p| p.0).sum();
        let sum_y: f64 = points.iter().map(|p| p.1).sum();
        let sum_xx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sum_xy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sum_xx - sum_x * sum_x;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sum_xy - sum_x * sum_y) / denom;
        Some(-slope)
    }

    /// Bin the distribution into logarithmic degree bins of the given ratio
    /// (e.g. `2.0` doubles the bin edge each time).  Returns
    /// `(bin_lower_edge, total_count)` pairs — the representation used for
    /// log-binned plots of real-world graphs.
    pub fn log_binned(&self, ratio: f64) -> Vec<(BigUint, BigUint)> {
        assert!(ratio > 1.0, "log bin ratio must exceed 1");
        if self.is_empty() {
            return Vec::new();
        }
        let mut bins: Vec<(BigUint, BigUint)> = Vec::new();
        let mut lower = BigUint::one();
        let mut upper = next_bin_edge(&lower, ratio);
        let mut acc = BigUint::zero();
        for (d, n) in &self.counts {
            while d >= &upper {
                if !acc.is_zero() {
                    bins.push((lower.clone(), acc.clone()));
                }
                acc = BigUint::zero();
                lower = upper.clone();
                upper = next_bin_edge(&lower, ratio);
            }
            acc += n;
        }
        if !acc.is_zero() {
            bins.push((lower, acc));
        }
        bins
    }

    /// Exact average degree `Σ d·n(d) / Σ n(d)` as a rational.
    pub fn mean_degree(&self) -> Option<BigRatio> {
        let vertices = self.total_vertices();
        if vertices.is_zero() {
            return None;
        }
        Some(BigRatio::new(self.total_edge_endpoints().into(), vertices))
    }

    /// Exact complementary cumulative counts: for each support degree `d`,
    /// the number of vertices with degree **at least** `d`.  This is the
    /// CCDF-style series often plotted instead of the raw histogram for
    /// real-world graphs.
    pub fn ccdf(&self) -> Vec<(BigUint, BigUint)> {
        let mut out: Vec<(BigUint, BigUint)> = Vec::with_capacity(self.support_size());
        let mut running = BigUint::zero();
        for (d, n) in self.counts.iter().rev() {
            running += n;
            out.push((d.clone(), running.clone()));
        }
        out.reverse();
        out
    }

    /// The smallest degree `d` such that at least `fraction` (numerator /
    /// denominator) of all vertices have degree ≤ `d` — e.g. `(1, 2)` gives
    /// the median degree.  Returns `None` for an empty distribution or a
    /// zero denominator.
    pub fn quantile_degree(&self, numerator: u64, denominator: u64) -> Option<BigUint> {
        if self.is_empty() || denominator == 0 {
            return None;
        }
        // Smallest d with  cumulative(d) * denominator >= total * numerator.
        let threshold = self.total_vertices() * BigUint::from(numerator);
        let mut cumulative = BigUint::zero();
        for (d, n) in &self.counts {
            cumulative += n;
            if &cumulative * &BigUint::from(denominator) >= threshold {
                return Some(d.clone());
            }
        }
        self.max_degree().cloned()
    }

    /// Write the distribution as TSV rows `degree<TAB>count` (exact decimal),
    /// the format the plotting scripts behind the paper's figures consume.
    pub fn write_tsv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        for (d, n) in &self.counts {
            writeln!(writer, "{d}\t{n}")?;
        }
        Ok(())
    }

    /// Parse a distribution from TSV rows produced by
    /// [`DegreeDistribution::write_tsv`].
    pub fn read_tsv<R: std::io::BufRead>(reader: R) -> std::io::Result<DegreeDistribution> {
        let mut dist = DegreeDistribution::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let parse = |field: Option<&str>| -> std::io::Result<BigUint> {
                field
                    .ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("line {}: missing field", idx + 1),
                        )
                    })?
                    .parse()
                    .map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("line {}: {e}", idx + 1),
                        )
                    })
            };
            let degree = parse(parts.next())?;
            let count = parse(parts.next())?;
            dist.add(degree, count);
        }
        Ok(dist)
    }
}

fn next_bin_edge(lower: &BigUint, ratio: f64) -> BigUint {
    // Smallest integer strictly greater than lower scaled by ratio; for huge
    // lower values use an integer multiply with a rational approximation of
    // the ratio to stay exact enough for binning.
    let scaled = (ratio * 1024.0).round() as u64;
    let candidate = (lower * scaled).div_rem_u64(1024).0;
    if candidate > *lower {
        candidate
    } else {
        lower + &BigUint::one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u64, u64)]) -> DegreeDistribution {
        DegreeDistribution::from_pairs(
            pairs
                .iter()
                .map(|&(d, n)| (BigUint::from(d), BigUint::from(n))),
        )
    }

    #[test]
    fn add_accumulates_and_skips_zero() {
        let mut d = DegreeDistribution::new();
        d.add(BigUint::from(3u64), BigUint::from(2u64));
        d.add(BigUint::from(3u64), BigUint::from(5u64));
        d.add(BigUint::from(9u64), BigUint::zero());
        assert_eq!(d.count(&BigUint::from(3u64)), BigUint::from(7u64));
        assert_eq!(d.support_size(), 1);
    }

    #[test]
    fn subtract_removes_exhausted_degrees() {
        let mut d = dist(&[(3, 2), (5, 1)]);
        d.subtract(&BigUint::from(3u64), &BigUint::from(2u64));
        assert_eq!(d.support_size(), 1);
        assert_eq!(d.count(&BigUint::from(3u64)), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn subtract_underflow_panics() {
        let mut d = dist(&[(3, 1)]);
        d.subtract(&BigUint::from(3u64), &BigUint::from(2u64));
    }

    #[test]
    fn totals() {
        let d = dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]);
        assert_eq!(d.total_vertices(), BigUint::from(24u64));
        assert_eq!(
            d.total_edge_endpoints(),
            BigUint::from(15 + 15 + 15 + 15u64)
        );
        assert_eq!(d.max_degree(), Some(&BigUint::from(15u64)));
        assert_eq!(d.min_degree(), Some(&BigUint::from(1u64)));
    }

    #[test]
    fn figure1_star_product_distribution() {
        // Paper Figure 1: the product of stars m̂=5 and m̂=3 has
        // n(1)=15, n(3)=5, n(5)=3, n(15)=1 — all on n(d) = 15/d.
        let star5 = dist(&[(1, 5), (5, 1)]);
        let star3 = dist(&[(1, 3), (3, 1)]);
        let product = star5.kron(&star3);
        assert_eq!(product, dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]));
        assert_eq!(
            product.perfect_power_law_constant(),
            Some(BigUint::from(15u64))
        );
    }

    #[test]
    fn kron_all_identity_and_order() {
        let a = dist(&[(1, 2), (2, 1)]);
        let b = dist(&[(1, 3), (3, 1)]);
        let ab = DegreeDistribution::kron_all(&[a.clone(), b.clone()]);
        let ba = DegreeDistribution::kron_all(&[b, a.clone()]);
        assert_eq!(ab, ba, "kron of distributions is commutative");
        assert_eq!(DegreeDistribution::kron_all(&[]), dist(&[(1, 1)]));
        assert_eq!(DegreeDistribution::kron_all(std::slice::from_ref(&a)), a);
    }

    #[test]
    fn self_loop_removal_adjustment() {
        // One vertex of degree 6 loses its loop and becomes degree 5.
        let mut d = dist(&[(1, 5), (6, 1)]);
        d.remove_self_loop_at(&BigUint::from(6u64));
        assert_eq!(d, dist(&[(1, 5), (5, 1)]));
        // Degree-1 self-loop vertex disappears from the support entirely.
        let mut d = dist(&[(1, 1)]);
        d.remove_self_loop_at(&BigUint::from(1u64));
        assert!(d.is_empty());
    }

    #[test]
    fn perfect_power_law_detection() {
        let good = dist(&[(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]);
        assert_eq!(
            good.perfect_power_law_constant(),
            Some(BigUint::from(12u64))
        );
        let bad = dist(&[(1, 12), (2, 7)]);
        assert_eq!(bad.perfect_power_law_constant(), None);
        assert_eq!(DegreeDistribution::new().perfect_power_law_constant(), None);
    }

    #[test]
    fn alpha_fit_recovers_slope_one() {
        let d = dist(&[(1, 1000), (10, 100), (100, 10), (1000, 1)]);
        let alpha = d.fit_alpha().unwrap();
        assert!((alpha - 1.0).abs() < 1e-9, "alpha = {alpha}");
        assert_eq!(dist(&[(3, 7)]).fit_alpha(), None);
    }

    #[test]
    fn alpha_fit_recovers_slope_two() {
        let d = dist(&[(1, 10_000), (10, 100), (100, 1)]);
        let alpha = d.fit_alpha().unwrap();
        assert!((alpha - 2.0).abs() < 1e-9, "alpha = {alpha}");
    }

    #[test]
    fn log_binning_groups_degrees() {
        let d = dist(&[(1, 8), (2, 4), (3, 3), (4, 2), (8, 1), (100, 1)]);
        let bins = d.log_binned(2.0);
        // Bin [1,2): 8; [2,4): 7; [4,8): 2; [8,16): 1; …; bin containing 100: 1.
        assert_eq!(bins[0], (BigUint::from(1u64), BigUint::from(8u64)));
        assert_eq!(bins[1], (BigUint::from(2u64), BigUint::from(7u64)));
        assert_eq!(bins[2], (BigUint::from(4u64), BigUint::from(2u64)));
        assert_eq!(bins[3], (BigUint::from(8u64), BigUint::from(1u64)));
        let total: BigUint = bins
            .iter()
            .fold(BigUint::zero(), |acc, (_, n)| acc + n.clone());
        assert_eq!(total, d.total_vertices());
    }

    #[test]
    fn mean_degree_ratio() {
        let d = dist(&[(1, 3), (3, 1)]);
        let mean = d.mean_degree().unwrap();
        assert_eq!(mean, BigRatio::new(6i64.into(), BigUint::from(4u64)));
        assert!(DegreeDistribution::new().mean_degree().is_none());
    }

    #[test]
    fn ccdf_counts_at_least() {
        let d = dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]);
        let ccdf = d.ccdf();
        assert_eq!(ccdf[0], (BigUint::from(1u64), BigUint::from(24u64)));
        assert_eq!(ccdf[1], (BigUint::from(3u64), BigUint::from(9u64)));
        assert_eq!(ccdf[3], (BigUint::from(15u64), BigUint::from(1u64)));
        assert!(DegreeDistribution::new().ccdf().is_empty());
    }

    #[test]
    fn quantile_degrees() {
        let d = dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]);
        // 15 of 24 vertices have degree 1, so the median degree is 1.
        assert_eq!(d.quantile_degree(1, 2), Some(BigUint::from(1u64)));
        // The 90th percentile (21.6 vertices) needs degree 5.
        assert_eq!(d.quantile_degree(9, 10), Some(BigUint::from(5u64)));
        assert_eq!(d.quantile_degree(1, 1), Some(BigUint::from(15u64)));
        assert_eq!(d.quantile_degree(1, 0), None);
        assert_eq!(DegreeDistribution::new().quantile_degree(1, 2), None);
    }

    #[test]
    fn tsv_round_trip() {
        let d = dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]);
        let mut buffer = Vec::new();
        d.write_tsv(&mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.contains("3\t5"));
        let parsed =
            DegreeDistribution::read_tsv(std::io::BufReader::new(buffer.as_slice())).unwrap();
        assert_eq!(parsed, d);
        assert!(DegreeDistribution::read_tsv(std::io::BufReader::new("1\n".as_bytes())).is_err());
        assert!(DegreeDistribution::read_tsv(std::io::BufReader::new("a b\n".as_bytes())).is_err());
    }

    #[test]
    fn from_histogram_skips_zero_counts() {
        let mut hist = BTreeMap::new();
        hist.insert(1u64, 5u64);
        hist.insert(7u64, 0u64);
        let d = DegreeDistribution::from_histogram(&hist);
        assert_eq!(d.support_size(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dist() -> impl Strategy<Value = DegreeDistribution> {
        proptest::collection::vec((1u64..50, 1u64..20), 1..8).prop_map(|pairs| {
            DegreeDistribution::from_pairs(
                pairs
                    .into_iter()
                    .map(|(d, n)| (BigUint::from(d), BigUint::from(n))),
            )
        })
    }

    proptest! {
        #[test]
        fn kron_vertex_counts_multiply(a in arb_dist(), b in arb_dist()) {
            let product = a.kron(&b);
            prop_assert_eq!(product.total_vertices(), a.total_vertices() * b.total_vertices());
        }

        #[test]
        fn kron_edge_endpoints_multiply(a in arb_dist(), b in arb_dist()) {
            let product = a.kron(&b);
            prop_assert_eq!(
                product.total_edge_endpoints(),
                a.total_edge_endpoints() * b.total_edge_endpoints()
            );
        }

        #[test]
        fn kron_commutes(a in arb_dist(), b in arb_dist()) {
            prop_assert_eq!(a.kron(&b), b.kron(&a));
        }

        #[test]
        fn kron_associates(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
            prop_assert_eq!(a.kron(&b).kron(&c), a.kron(&b.kron(&c)));
        }

        #[test]
        fn log_binning_preserves_vertex_count(a in arb_dist(), ratio in 1.1f64..4.0) {
            let bins = a.log_binned(ratio);
            let total: BigUint = bins.iter().fold(BigUint::zero(), |acc, (_, n)| acc + n.clone());
            prop_assert_eq!(total, a.total_vertices());
        }
    }
}
