//@ path: crates/sparse/src/lib.rs
#![forbid(unsafe_code)]

pub fn fold_counts(values: &[u64]) -> u64 {
    tally(values)
}

fn tally(values: &[u64]) -> u64 {
    *values.first().expect("fold_counts needs a batch") //~ no-expect, panic-reachability
}

pub fn le_u64(bytes: &[u8]) -> u64 {
    assert!(bytes.len() >= 8, "le_u64 needs at least 8 bytes");
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(word)
}
