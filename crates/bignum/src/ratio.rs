//! Exact rational numbers.
//!
//! [`BigRatio`] is a normalised signed rational (numerator [`BigInt`],
//! strictly-positive denominator [`BigUint`]).  The graph designer uses it
//! for quantities that are only integral after combining several terms, e.g.
//! the paper's corrected triangle count `N_tri(A) - m_A/2 + 1/3` and for
//! power-law exponents expressed as ratios of logarithms.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::bigint::BigInt;
use crate::biguint::BigUint;

/// An exact rational number in lowest terms with a positive denominator.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BigRatio {
    numerator: BigInt,
    denominator: BigUint,
}

impl BigRatio {
    /// The value zero.
    pub fn zero() -> Self {
        BigRatio {
            numerator: BigInt::zero(),
            denominator: BigUint::one(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigRatio {
            numerator: BigInt::one(),
            denominator: BigUint::one(),
        }
    }

    /// Construct `numerator / denominator`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    pub fn new(numerator: BigInt, denominator: BigUint) -> Self {
        assert!(
            !denominator.is_zero(),
            "BigRatio denominator must be non-zero"
        );
        if numerator.is_zero() {
            return BigRatio::zero();
        }
        let g = numerator.magnitude().gcd(&denominator);
        let num_mag = numerator.magnitude().div_rem(&g).0;
        let den = denominator.div_rem(&g).0;
        BigRatio {
            numerator: BigInt::from_sign_magnitude(numerator.sign(), num_mag),
            denominator: den,
        }
    }

    /// Construct from an integer.
    pub fn from_int(value: impl Into<BigInt>) -> Self {
        BigRatio {
            numerator: value.into(),
            denominator: BigUint::one(),
        }
    }

    /// The (signed) numerator in lowest terms.
    pub fn numerator(&self) -> &BigInt {
        &self.numerator
    }

    /// The (positive) denominator in lowest terms.
    pub fn denominator(&self) -> &BigUint {
        &self.denominator
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Returns `true` if the value is a (signed) integer.
    pub fn is_integer(&self) -> bool {
        self.denominator.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numerator.is_negative()
    }

    /// The exact integer value, if the ratio is integral.
    pub fn to_integer(&self) -> Option<BigInt> {
        if self.is_integer() {
            Some(self.numerator.clone())
        } else {
            None
        }
    }

    /// The exact non-negative integer value, if integral and non-negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        self.to_integer().and_then(|i| i.to_biguint())
    }

    /// Floor of the ratio as a [`BigInt`].
    pub fn floor(&self) -> BigInt {
        let den = BigInt::from(self.denominator.clone());
        let (q, r) = self.numerator.div_rem(&den);
        if r.is_zero() || !self.numerator.is_negative() {
            q
        } else {
            q - BigInt::one()
        }
    }

    /// Approximate `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.numerator.to_f64() / self.denominator.to_f64()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics when the value is zero.
    pub fn recip(&self) -> BigRatio {
        assert!(!self.is_zero(), "cannot invert zero");
        let num = BigInt::from_sign_magnitude(self.numerator.sign(), self.denominator.clone());
        BigRatio::new(num, self.numerator.magnitude().clone())
    }
}

impl From<BigUint> for BigRatio {
    fn from(value: BigUint) -> Self {
        BigRatio::from_int(BigInt::from(value))
    }
}

impl From<BigInt> for BigRatio {
    fn from(value: BigInt) -> Self {
        BigRatio::from_int(value)
    }
}

impl From<u64> for BigRatio {
    fn from(value: u64) -> Self {
        BigRatio::from_int(BigInt::from(value))
    }
}

impl From<i64> for BigRatio {
    fn from(value: i64) -> Self {
        BigRatio::from_int(BigInt::from(value))
    }
}

impl Add for &BigRatio {
    type Output = BigRatio;
    fn add(self, rhs: &BigRatio) -> BigRatio {
        let num = &self.numerator * &BigInt::from(rhs.denominator.clone())
            + &rhs.numerator * &BigInt::from(self.denominator.clone());
        let den = &self.denominator * &rhs.denominator;
        BigRatio::new(num, den)
    }
}

impl Add for BigRatio {
    type Output = BigRatio;
    fn add(self, rhs: BigRatio) -> BigRatio {
        &self + &rhs
    }
}

impl Sub for &BigRatio {
    type Output = BigRatio;
    fn sub(self, rhs: &BigRatio) -> BigRatio {
        self + &(-rhs.clone())
    }
}

impl Sub for BigRatio {
    type Output = BigRatio;
    fn sub(self, rhs: BigRatio) -> BigRatio {
        &self - &rhs
    }
}

impl Mul for &BigRatio {
    type Output = BigRatio;
    fn mul(self, rhs: &BigRatio) -> BigRatio {
        let num = &self.numerator * &rhs.numerator;
        let den = &self.denominator * &rhs.denominator;
        BigRatio::new(num, den)
    }
}

impl Mul for BigRatio {
    type Output = BigRatio;
    fn mul(self, rhs: BigRatio) -> BigRatio {
        &self * &rhs
    }
}

impl Div for &BigRatio {
    type Output = BigRatio;
    // Division by a rational is multiplication by its reciprocal; clippy's
    // suspicious-arithmetic lint cannot see that this is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &BigRatio) -> BigRatio {
        self * &rhs.recip()
    }
}

impl Div for BigRatio {
    type Output = BigRatio;
    fn div(self, rhs: BigRatio) -> BigRatio {
        &self / &rhs
    }
}

impl Neg for BigRatio {
    type Output = BigRatio;
    fn neg(self) -> BigRatio {
        BigRatio {
            numerator: -self.numerator,
            denominator: self.denominator,
        }
    }
}

impl PartialOrd for BigRatio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRatio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ==  a*d vs c*b  (denominators positive).
        let lhs = &self.numerator * &BigInt::from(other.denominator.clone());
        let rhs = &other.numerator * &BigInt::from(self.denominator.clone());
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for BigRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl fmt::Debug for BigRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRatio({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(n: i64, d: u64) -> BigRatio {
        BigRatio::new(BigInt::from(n), BigUint::from(d))
    }

    #[test]
    fn construction_reduces_to_lowest_terms() {
        let r = ratio(6, 8);
        assert_eq!(r.numerator(), &BigInt::from(3));
        assert_eq!(r.denominator(), &BigUint::from(4u64));
        assert_eq!(ratio(0, 17), BigRatio::zero());
        assert_eq!(ratio(-6, 8), ratio(-3, 4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = BigRatio::new(BigInt::one(), BigUint::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ratio(1, 2) + ratio(1, 3), ratio(5, 6));
        assert_eq!(ratio(1, 2) - ratio(1, 3), ratio(1, 6));
        assert_eq!(ratio(2, 3) * ratio(3, 4), ratio(1, 2));
        assert_eq!(ratio(2, 3) / ratio(4, 3), ratio(1, 2));
        assert_eq!(-ratio(2, 3), ratio(-2, 3));
    }

    #[test]
    fn triangle_correction_shape_is_integral() {
        // Same shape as the paper's Case-1 correction (sixths minus halves
        // plus thirds): 94/6 - 8/2 + 4/3 = 13 exactly.
        let total = BigRatio::new(BigInt::from(94), BigUint::from(6u64))
            - BigRatio::new(BigInt::from(8), BigUint::from(2u64))
            + BigRatio::new(BigInt::from(4), BigUint::from(3u64));
        assert!(total.is_integer());
        assert_eq!(total.to_integer(), Some(BigInt::from(13)));
    }

    #[test]
    fn comparisons() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(-1, 2) < ratio(-1, 3));
        assert!(ratio(2, 4) == ratio(1, 2));
        assert!(ratio(7, 1) > ratio(13, 2));
    }

    #[test]
    fn floor_behaviour() {
        assert_eq!(ratio(7, 2).floor(), BigInt::from(3));
        assert_eq!(ratio(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(ratio(6, 2).floor(), BigInt::from(3));
        assert_eq!(ratio(-6, 2).floor(), BigInt::from(-3));
    }

    #[test]
    fn conversions() {
        assert_eq!(ratio(6, 2).to_integer(), Some(BigInt::from(3)));
        assert_eq!(ratio(7, 2).to_integer(), None);
        assert_eq!(ratio(6, 2).to_biguint(), Some(BigUint::from(3u64)));
        assert_eq!(ratio(-6, 2).to_biguint(), None);
        assert!((ratio(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recip() {
        assert_eq!(ratio(2, 3).recip(), ratio(3, 2));
        assert_eq!(ratio(-2, 3).recip(), ratio(-3, 2));
    }

    #[test]
    fn display() {
        assert_eq!(ratio(3, 1).to_string(), "3");
        assert_eq!(ratio(-5, 6).to_string(), "-5/6");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ratio() -> impl Strategy<Value = BigRatio> {
        (any::<i64>(), 1u64..u64::MAX)
            .prop_map(|(n, d)| BigRatio::new(BigInt::from(n), BigUint::from(d)))
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_ratio(), b in arb_ratio()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn sub_self_zero(a in arb_ratio()) {
            prop_assert_eq!(&a - &a, BigRatio::zero());
        }

        #[test]
        fn mul_by_recip_is_one(a in arb_ratio()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(&a * &a.recip(), BigRatio::one());
        }

        #[test]
        fn floor_le_value(a in arb_ratio()) {
            let fl = BigRatio::from_int(a.floor());
            prop_assert!(fl <= a);
            let fl_plus_one = fl + BigRatio::one();
            prop_assert!(fl_plus_one > a);
        }

        #[test]
        fn normalised_gcd_is_one(a in arb_ratio()) {
            prop_assume!(!a.is_zero());
            let g = a.numerator().magnitude().gcd(a.denominator());
            prop_assert!(g.is_one());
        }
    }
}
