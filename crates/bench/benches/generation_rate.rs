//! Criterion benchmark behind Figure 3: edge-generation throughput as a
//! function of worker count, for both the block-materialising and the
//! streaming generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kron_bench::paper;
use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{count_edges_streaming, GeneratorConfig, ParallelGenerator};

fn design() -> KroneckerDesign {
    KroneckerDesign::from_star_points(paper::MACHINE_SCALE, SelfLoop::None).expect("valid design")
}

fn bench_generation_rate(c: &mut Criterion) {
    let design = design();
    let edges = design.edges().to_u64().expect("machine scale");
    let mut group = c.benchmark_group("generation_rate");
    group.throughput(Throughput::Elements(edges));
    group.sample_size(10);

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("materialised", workers),
            &workers,
            |b, &workers| {
                let generator = ParallelGenerator::new(GeneratorConfig {
                    workers,
                    max_c_edges: 200_000,
                    max_total_edges: 60_000_000,
                });
                b.iter(|| {
                    generator
                        .generate_with_split(&design, paper::MACHINE_SCALE_SPLIT)
                        .expect("generation succeeds")
                        .edge_count()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    count_edges_streaming(&design, paper::MACHINE_SCALE_SPLIT, workers, 60_000_000)
                        .expect("streaming succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation_rate);
criterion_main!(benches);
