//! The cross-crate call graph behind the panic-reachability rule.
//!
//! Nodes are the non-test `fn` items recovered by [`crate::parser`];
//! edges are call sites extracted from each body's token stream.  With
//! no type information available, call resolution is deliberately an
//! **over-approximation** in the conservative direction: a method call
//! `.foo()` links to *every* workspace method named `foo`, a qualified
//! call `Q::foo()` to every method of every type named `Q`, and a bare
//! call `foo()` first to same-crate free functions, then through the
//! file's `use` imports, then to a unique workspace-wide match.  Calls
//! into `std` and vendored crates resolve to nothing and drop out.
//! Over-approximation can only produce a panic-reachability finding
//! that a human must justify — never hide a real path.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Lexed, TokKind, Token};
use crate::parser::{FnItem, ParsedFile};

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the slice `build` was given.
    pub file: usize,
    /// Workspace-relative path of the owning file.
    pub rel: String,
    /// Owning crate (see [`crate::parser::crate_of`]).
    pub krate: String,
    pub name: String,
    pub self_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    pub is_pub: bool,
    /// First and last source line of the item (signature through
    /// closing brace), for mapping a finding line to its function.
    pub span: (u32, u32),
}

impl FnNode {
    /// Human-readable name for chain reports: `Type::name` for methods,
    /// `crate::name` for free functions.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// `callees[i]` = node indices `fns[i]` may call.
    pub callees: Vec<BTreeSet<usize>>,
}

/// One file's inputs to graph construction.
pub struct GraphFile<'a> {
    pub lexed: &'a Lexed,
    pub parsed: &'a ParsedFile,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Keywords and primitives that look like bare calls but are not.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "in"
            | "as"
            | "let"
            | "move"
            | "ref"
            | "mut"
            | "pub"
            | "impl"
            | "use"
            | "where"
            | "else"
            | "break"
            | "continue"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "mod"
            | "const"
            | "static"
            | "super"
            | "true"
            | "false"
    )
}

/// A call site extracted from a token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `.name(..)`
    Method(String),
    /// `qual::name(..)` — `qual` is the segment directly before the
    /// final `::`.
    Qualified(String, String),
    /// `name(..)`
    Free(String),
}

/// Extract every call site in `tokens[range]`.  Macro invocations
/// (`name!(..)`) and nested `fn` definitions are skipped; tuple-struct
/// and enum-variant constructors are filtered by their CamelCase names.
pub fn extract_calls(tokens: &[Token], range: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let (start, end) = range;
    for j in start..end.min(tokens.len()) {
        let Some(name) = ident_at(tokens, j) else {
            continue;
        };
        if !punct_at(tokens, j + 1, '(') {
            continue;
        }
        if j > start && punct_at(tokens, j - 1, '!') {
            continue; // macro invocation
        }
        if j > start && ident_at(tokens, j - 1) == Some("fn") {
            continue; // nested definition, not a call
        }
        if j > start && punct_at(tokens, j - 1, '.') {
            out.push(Call::Method(name.to_string()));
            continue;
        }
        if j >= start + 2 && punct_at(tokens, j - 1, ':') && punct_at(tokens, j - 2, ':') {
            if let Some(qual) = j.checked_sub(3).and_then(|k| ident_at(tokens, k)) {
                out.push(Call::Qualified(qual.to_string(), name.to_string()));
            }
            continue;
        }
        if is_call_keyword(name) || name.starts_with(char::is_uppercase) {
            continue; // keyword or constructor
        }
        out.push(Call::Free(name.to_string()));
    }
    out
}

/// The crate a `use` path's head segment refers to, if it names a
/// workspace crate: `crate`/`self` map to the importing crate, a
/// `kron_*` head maps to `crates/<tail>`.
fn import_crate(head: &str, own_crate: &str) -> Option<String> {
    if head == "crate" || head == "self" {
        return Some(own_crate.to_string());
    }
    if head == "kron" {
        return Some("facade".to_string());
    }
    head.strip_prefix("kron_").map(str::to_string)
}

impl CallGraph {
    /// Build the graph over every non-test function in `files`.
    pub fn build(files: &[GraphFile<'_>]) -> CallGraph {
        let mut g = CallGraph::default();
        // Node collection, in file order.
        let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (k, item) in f.parsed.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                node_of.insert((fi, k), g.fns.len());
                g.fns.push(FnNode {
                    file: fi,
                    rel: f.parsed.rel.clone(),
                    krate: f.parsed.krate.clone(),
                    name: item.name.clone(),
                    self_type: item.self_type.clone(),
                    line: item.line,
                    is_pub: item.is_pub,
                    span: item_span(item, &f.lexed.tokens),
                });
            }
        }
        // Resolution indexes.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_type: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (n, node) in g.fns.iter().enumerate() {
            match &node.self_type {
                Some(ty) => {
                    methods_by_name.entry(&node.name).or_default().push(n);
                    methods_by_type
                        .entry((ty.as_str(), &node.name))
                        .or_default()
                        .push(n);
                }
                None => {
                    free_by_name.entry(&node.name).or_default().push(n);
                    free_by_crate
                        .entry((&node.krate, &node.name))
                        .or_default()
                        .push(n);
                }
            }
        }
        // Edge extraction + resolution.
        let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); g.fns.len()];
        for (fi, f) in files.iter().enumerate() {
            for (k, item) in f.parsed.fns.iter().enumerate() {
                let Some(&n) = node_of.get(&(fi, k)) else {
                    continue;
                };
                for call in extract_calls(&f.lexed.tokens, item.body) {
                    let targets: Vec<usize> = match &call {
                        Call::Method(m) => {
                            methods_by_name.get(m.as_str()).cloned().unwrap_or_default()
                        }
                        Call::Qualified(q, m) => resolve_qualified(
                            q,
                            m,
                            &g.fns[n],
                            f.parsed,
                            &free_by_crate,
                            &free_by_name,
                            &methods_by_type,
                            &methods_by_name,
                        ),
                        Call::Free(m) => resolve_free(
                            m,
                            &g.fns[n].krate,
                            f.parsed,
                            &free_by_crate,
                            &free_by_name,
                        ),
                    };
                    callees[n].extend(targets.into_iter().filter(|&t| t != n));
                }
            }
        }
        g.callees = callees;
        g
    }

    /// BFS from `entries`; returns, per node, the predecessor on one
    /// shortest path from an entry (`usize::MAX` marks an entry root,
    /// absent means unreachable).
    pub fn reach_from(&self, entries: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if let Entry::Vacant(slot) = parent.entry(e) {
                slot.insert(usize::MAX);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &c in &self.callees[n] {
                if let Entry::Vacant(slot) = parent.entry(c) {
                    slot.insert(n);
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// The chain entry → … → `node`, as display names, given the
    /// predecessor map from [`CallGraph::reach_from`].
    pub fn chain_to(&self, node: usize, parent: &BTreeMap<usize, usize>) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = node;
        loop {
            rev.push(self.fns[cur].display());
            match parent.get(&cur) {
                Some(&p) if p != usize::MAX => cur = p,
                _ => break,
            }
        }
        rev.reverse();
        rev
    }

    /// The innermost function in file `fi` whose line span contains
    /// `line` (innermost = the latest-starting containing span, so a
    /// nested fn wins over its enclosing fn).
    pub fn containing_fn(&self, fi: usize, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == fi && f.span.0 <= line && line <= f.span.1)
            .max_by_key(|(_, f)| f.span.0)
            .map(|(n, _)| n)
    }
}

/// First..last source line of a fn item.
fn item_span(item: &FnItem, tokens: &[Token]) -> (u32, u32) {
    let (s, e) = item.body;
    let last = if e > s && e <= tokens.len() {
        tokens[e - 1].line
    } else if s < tokens.len() {
        tokens[s].line
    } else {
        item.line
    };
    (item.line, last.max(item.line))
}

#[allow(clippy::too_many_arguments)] // resolution needs all four indexes at once
fn resolve_qualified(
    q: &str,
    m: &str,
    caller: &FnNode,
    file: &ParsedFile,
    free_by_crate: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_type: &BTreeMap<(&str, &str), Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    // `self::f` / `Self::f`: the current impl type's methods when there
    // is one, else same-crate free fns.
    if q == "self" || q == "Self" {
        if let Some(ty) = &caller.self_type {
            if let Some(hits) = methods_by_type.get(&(ty.as_str(), m)) {
                return hits.clone();
            }
        }
        if let Some(hits) = free_by_crate.get(&(caller.krate.as_str(), m)) {
            return hits.clone();
        }
        return methods_by_name.get(m).cloned().unwrap_or_default();
    }
    // `crate::f` and workspace-crate heads (`kron_sparse::f`).
    if let Some(krate) = import_crate(q, &caller.krate) {
        if let Some(hits) = free_by_crate.get(&(krate.as_str(), m)) {
            return hits.clone();
        }
        // `kron_sparse::Matrix::..` style paths end up with q = the
        // type; fall through below handles those.  A crate-qualified
        // miss can still be a re-export; try the unique global match.
        return unique_or_empty(free_by_name.get(m));
    }
    // `Type::method`.
    if q.starts_with(char::is_uppercase) {
        if let Some(hits) = methods_by_type.get(&(q, m)) {
            return hits.clone();
        }
        return Vec::new();
    }
    // `module::f`: a same-crate module path, or an imported module.
    if let Some(hits) = free_by_crate.get(&(caller.krate.as_str(), m)) {
        return hits.clone();
    }
    for path in &file.imports {
        if path.last().is_some_and(|leaf| leaf == q) {
            if let Some(head) = path.first() {
                if let Some(krate) = import_crate(head, &caller.krate) {
                    if let Some(hits) = free_by_crate.get(&(krate.as_str(), m)) {
                        return hits.clone();
                    }
                }
            }
        }
    }
    unique_or_empty(free_by_name.get(m))
}

fn resolve_free(
    m: &str,
    own_crate: &str,
    file: &ParsedFile,
    free_by_crate: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    if let Some(hits) = free_by_crate.get(&(own_crate, m)) {
        return hits.clone();
    }
    // Imported: `use kron_sparse::addressable;` then `addressable(..)`.
    for path in &file.imports {
        if path.last().is_some_and(|leaf| leaf == m) {
            if let Some(head) = path.first() {
                if let Some(krate) = import_crate(head, own_crate) {
                    if let Some(hits) = free_by_crate.get(&(krate.as_str(), m)) {
                        return hits.clone();
                    }
                }
            }
        }
    }
    unique_or_empty(free_by_name.get(m))
}

/// A cross-crate fallback only when the name is globally unambiguous.
fn unique_or_empty(hits: Option<&Vec<usize>>) -> Vec<usize> {
    match hits {
        Some(v) if v.len() == 1 => v.clone(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};
    use crate::parser::parse_file;

    struct Unit {
        lexed: Lexed,
        parsed: ParsedFile,
    }

    fn unit(rel: &str, src: &str) -> Unit {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let parsed = parse_file(rel, &lexed, &mask);
        Unit { lexed, parsed }
    }

    fn build(units: &[Unit]) -> CallGraph {
        let files: Vec<GraphFile<'_>> = units
            .iter()
            .map(|u| GraphFile {
                lexed: &u.lexed,
                parsed: &u.parsed,
            })
            .collect();
        CallGraph::build(&files)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn call_extraction_classifies_sites() {
        let lexed = lex("fn f() { a(); x.b(); C::d(); e!(); Some(1); fn g() {} }");
        let calls = extract_calls(&lexed.tokens, (0, lexed.tokens.len()));
        assert_eq!(
            calls,
            vec![
                Call::Free("a".to_string()),
                Call::Method("b".to_string()),
                Call::Qualified("C".to_string(), "d".to_string()),
            ]
        );
    }

    #[test]
    fn transitive_cross_crate_chain_is_reachable() {
        let units = [
            unit(
                "crates/gen/src/pipeline.rs",
                "use kron_sparse::fold;\n\
                 pub struct Pipeline;\n\
                 impl Pipeline { pub fn count(self) -> u64 { helper() } }\n\
                 fn helper() -> u64 { fold() }\n",
            ),
            unit(
                "crates/sparse/src/lib.rs",
                "pub fn fold() -> u64 { deep() }\n\
                 fn deep() -> u64 { 0 }\n",
            ),
        ];
        let g = build(&units);
        let entries: Vec<usize> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_pub && f.self_type.as_deref() == Some("Pipeline"))
            .map(|(n, _)| n)
            .collect();
        let parent = g.reach_from(&entries);
        let deep = node(&g, "deep");
        assert!(parent.contains_key(&deep), "deep should be reachable");
        let chain = g.chain_to(deep, &parent);
        assert_eq!(
            chain,
            vec![
                "Pipeline::count",
                "gen::helper",
                "sparse::fold",
                "sparse::deep"
            ]
        );
    }

    #[test]
    fn unreachable_fns_stay_unreachable() {
        let units = [unit(
            "crates/gen/src/pipeline.rs",
            "pub struct Pipeline;\n\
             impl Pipeline { pub fn run(self) {} }\n\
             fn orphan() { danger() }\n\
             fn danger() {}\n",
        )];
        let g = build(&units);
        let parent = g.reach_from(&[node(&g, "run")]);
        assert!(!parent.contains_key(&node(&g, "danger")));
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let units = [unit(
            "crates/gen/src/pipeline.rs",
            "pub fn shipped() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { shipped() }\n\
             }\n",
        )];
        let g = build(&units);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "shipped");
    }

    #[test]
    fn containing_fn_prefers_the_innermost_span() {
        let units = [unit(
            "crates/gen/src/a.rs",
            "fn outer() {\n\
                 fn inner() {\n\
                     work();\n\
                 }\n\
                 inner();\n\
             }\n\
             fn work() {}\n",
        )];
        let g = build(&units);
        let hit = units[0].parsed.fns[1].clone();
        assert_eq!(hit.name, "inner");
        assert_eq!(g.containing_fn(0, 3), Some(node(&g, "inner")));
        assert_eq!(g.containing_fn(0, 5), Some(node(&g, "outer")));
        assert_eq!(g.containing_fn(0, 99), None);
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let units = [unit(
            "crates/gen/src/a.rs",
            "pub struct A; pub struct B;\n\
             impl A { pub fn go(&self) {} }\n\
             impl B { pub fn go(&self) {} }\n\
             fn driver(x: &A) { x.go(); }\n",
        )];
        let g = build(&units);
        let driver = node(&g, "driver");
        assert_eq!(g.callees[driver].len(), 2, "both go() methods are linked");
    }
}
