//! # extreme-graphs
//!
//! Design, generation, and validation of extreme-scale power-law graphs —
//! a Rust workspace reproducing Kepner et al. (IPDPS 2018).
//!
//! This crate is the facade over the workspace:
//!
//! * [`bignum`] (re-export of `kron-bignum`) — exact arbitrary-precision
//!   arithmetic for 10^30-edge designs.
//! * [`sparse`] (re-export of `kron-sparse`) — the GraphBLAS-style sparse
//!   matrix substrate (semirings, COO/CSR/CSC, Kronecker products, SpGEMM).
//! * [`core`] (re-export of `kron-core`) — the paper's contribution: exact
//!   design of power-law Kronecker graphs from star constituents.
//! * [`gen`] (re-export of `kron-gen`) — the unified design → generate →
//!   validate [`Pipeline`], its [`gen::sink`] module of pluggable edge
//!   sinks, the [`gen::metrics`] streaming-metrics engine, the
//!   [`gen::replay`] shard-replay source, and the streaming engine
//!   underneath them all.
//! * [`rmat`] (re-export of `kron-rmat`) — the R-MAT / Graph500 baseline and
//!   its trial-and-error design loop.
//!
//! The paper's whole workflow is one builder:
//!
//! ```
//! use extreme_graphs::{KroneckerDesign, Pipeline, SelfLoop};
//!
//! // Design a graph with exactly known properties…
//! let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
//! assert_eq!(design.edges().to_string(), "13166");
//!
//! // …generate it in parallel with no inter-worker communication, streaming
//! // every edge through per-worker sinks (here: counters) while a streaming
//! // degree histogram measures the result…
//! let report = Pipeline::for_design(&design).workers(4).count().unwrap();
//!
//! // …and the run has already validated measured == predicted, field by
//! // field, and recorded a reproducibility manifest.
//! assert!(report.validation.is_exact_match());
//! assert_eq!(report.edge_count().to_string(), design.edges().to_string());
//! assert_eq!(report.manifest.total_edges, report.edge_count());
//! ```
//!
//! Other terminals: [`Pipeline::collect_coo`] for in-memory blocks,
//! [`Pipeline::write_tsv`] / [`Pipeline::write_binary`] for one shard file
//! per worker (plus a `manifest.json`), and [`Pipeline::into_sinks`] for any
//! custom [`gen::sink::EdgeSink`].
//!
//! ## Edge sources
//!
//! The pipeline is generic over an [`EdgeSource`] — a partitioned, chunked,
//! deterministic producer of edges — so every generator in the workspace
//! runs through the same terminals, streamed validation, and manifests:
//!
//! | source | constructor | prediction | manifest `source` |
//! |---|---|---|---|
//! | exact Kronecker expansion | `Pipeline::for_design(&design)` | full property sheet, validated field by field | `"kronecker"` |
//! | raw `B ⊗ C` product | `Pipeline::for_design(&design).raw_product()` | raw vertex/edge/self-loop counts | `"kronecker_raw"` |
//! | R-MAT sampler ([`RmatSource`]) | `Pipeline::for_source(RmatSource::new(params, seed)?)` | vertex + sample counts only; the rest is measured-only | `"rmat"` |
//! | shard replay ([`ReplaySource`]) | `Pipeline::for_source(ReplaySource::from_directory(dir)?)` | vertex + total edge counts from the stored manifest | `"replay"` |
//!
//! ```
//! use extreme_graphs::{Pipeline, RmatParams, RmatSource};
//!
//! let report = Pipeline::for_source(RmatSource::new(RmatParams::graph500(10), 7).unwrap())
//!     .workers(4)
//!     .count()
//!     .unwrap();
//! assert!(report.predicted.is_none()); // R-MAT properties are measured-only
//! assert_eq!(report.manifest.source, "rmat");
//! assert_eq!(report.manifest.source_seed, Some(7));
//! ```
//!
//! ## Streaming metrics
//!
//! Every run's measurement flows through the pluggable metrics engine
//! ([`gen::metrics`]): the [`RunReport`] carries a typed [`MetricsReport`]
//! and the manifest records the same numbers as forward-compatible
//! name/value records:
//!
//! | metric | `MetricsReport` field |
//! |---|---|
//! | vertex / edge / self-loop counts | `vertices`, `edges`, `self_loops` |
//! | degree histogram (both adaptive modes) | `degree_histogram`, `distinct_degrees` |
//! | max degree | `max_degree` |
//! | per-worker balance | `balance` |
//! | power-law slope fit + goodness vs fitted and ideal curves | `power_law` |
//! | custom [`StreamingMetric`]s via `.with_metric(...)` | `custom` |
//!
//! ```
//! use extreme_graphs::{KroneckerDesign, Pipeline, PredicateCountMetric, SelfLoop};
//!
//! let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
//! let report = Pipeline::for_design(&design)
//!     .workers(2)
//!     .with_metric(PredicateCountMetric::new("upper_triangle", |r, c| r < c))
//!     .count()
//!     .unwrap();
//! assert_eq!(report.metrics.edges, report.edge_count());
//! assert_eq!(
//!     report.metrics.custom_value("upper_triangle"),
//!     Some((report.edge_count() / 2).to_string().as_str())
//! );
//! // A plain star product lies exactly on the ideal n(d) = c/d law.
//! assert!(report.metrics.power_law.as_ref().unwrap().residual_vs_ideal < 1e-9);
//! ```
//!
//! ## Validate an existing graph from disk
//!
//! [`ReplaySource`] streams a shard directory back through the pipeline, so
//! any graph on disk can be re-measured, re-validated, permuted, filtered,
//! or re-sharded without regeneration — the replayed [`MetricsReport`] is
//! equal to the generation-time one for the same shard layout:
//!
//! ```
//! use extreme_graphs::{KroneckerDesign, Pipeline, ReplaySource, SelfLoop};
//!
//! let dir = std::env::temp_dir().join("extreme_graphs_facade_replay_doc");
//! let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
//! let generated = Pipeline::for_design(&design).workers(2).write_binary(&dir).unwrap();
//!
//! let source = ReplaySource::from_directory(&dir).unwrap();
//! let replayed = Pipeline::for_source(source).workers(2).count().unwrap();
//! assert!(replayed.is_valid());
//! assert_eq!(replayed.metrics, generated.metrics);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! ## The vertex-permutation stage
//!
//! `Pipeline::permute_vertices(seed)` relabels every vertex in-stream
//! through a seeded [`gen::FeistelPermutation`] — an exact bijection on
//! `[0, V)` evaluated in O(1) memory, replacing the O(V) permutation table
//! Graph500-style relabelling would otherwise need (unusable at the paper's
//! 10¹⁰-vertex designs).  The permutation is degree-preserving, so
//! validation still passes, and the seed lands in the manifest so the run
//! stays reproducible.  [`gen::PermuteSink`] is the same stage as a
//! standalone sink combinator.
//!
//! ## Migrating from the pre-pipeline entry points
//!
//! The earlier entry points remain as deprecated thin wrappers:
//!
//! | deprecated | pipeline replacement |
//! |---|---|
//! | `ParallelGenerator::new(cfg).generate(&d)` | `Pipeline::for_design(&d).workers(n).collect_coo()` |
//! | `ParallelGenerator::generate_with_split(&d, s)` | `Pipeline::for_design(&d).split_index(s).collect_coo()` |
//! | `ShardDriver::new(cfg).run_counting(&d, s)` | `Pipeline::for_design(&d).split_index(s).count()` |
//! | `ShardDriver::run_coo(&d, s)` | `Pipeline::for_design(&d).split_index(s).collect_coo()` |
//! | `ShardDriver::run_tsv(&d, s, dir)` | `Pipeline::for_design(&d).split_index(s).write_tsv(dir)` |
//! | `ShardDriver::run_binary(&d, s, dir)` | `Pipeline::for_design(&d).split_index(s).write_binary(dir)` |
//! | `ShardDriver::run(&d, s, factory)` | `Pipeline::for_design(&d).split_index(s).into_sinks(factory)` |
//! | `gen::writer::stream_blocks_tsv(&d, s, w, max, dir)` | `Pipeline::for_design(&d).raw_product().write_tsv(dir)` |
//! | `GeneratorConfig::max_total_edges` | gone — the pipeline streams and has no total-edge ceiling |
//! | `RmatGenerator::generate_edges()` | `Pipeline::for_source(RmatSource::from_generator(g)).collect_coo()` (or indexed ranges via `RmatGenerator::edge_at`) |
//! | `RmatGenerator::generate_edges_parallel(n)` | `Pipeline::for_source(RmatSource::from_generator(g)).workers(n).…` — streams, never materialises |
//! | `rmat::permute::random_permutation(n, seed)` | `gen::FeistelPermutation::new(n, seed)` — O(1) memory, no table |
//! | `rmat::permute::relabel_edges(&edges, &perm)` | `Pipeline::permute_vertices(seed)` in-stream, or `gen::PermuteSink` |
//! | reading measured values out of `RunReport.validation.checks` | typed fields on `RunReport.metrics` ([`MetricsReport`]); `validation` keeps the predicted/measured comparison |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kron_bignum as bignum;
pub use kron_core as core;
pub use kron_gen as gen;
pub use kron_rmat as rmat;
pub use kron_sparse as sparse;

pub use kron_bignum::{BigInt, BigRatio, BigUint};
pub use kron_core::{
    Constituent, DegreeDistribution, DesignSearch, DesignTargets, GraphProperties, KroneckerDesign,
    SelfLoop, StarGraph, ValidationReport,
};
pub use kron_gen::{
    DesignPipeline, DistributedGraph, DriverConfig, EdgeSource, FaultSchedule, FaultySink,
    FaultySource, FeistelPermutation, GenerationStats, GeneratorConfig, KroneckerSource,
    MetricRecord, MetricSuite, MetricsReport, ParallelGenerator, PermuteSink, Pipeline,
    PredicateCountMetric, ProgressJournal, ReplaySource, RetryPolicy, RunManifest, RunReport,
    SelfLoopPolicy, ShardDriver, ShardFailure, ShardRecord, ShardRun, SourceDescriptor, SourceRun,
    StreamingMetric,
};
pub use kron_rmat::{RmatGenerator, RmatParams, RmatSource};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert_eq!(design.vertices(), BigUint::from(20u64));
        let params = RmatParams::graph500(5);
        assert!(params.is_valid());
    }

    #[test]
    fn pipeline_reexport_runs_end_to_end() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        let report = Pipeline::for_design(&design).workers(2).count().unwrap();
        assert!(report.is_valid());
        assert_eq!(
            RunManifest::from_json(&report.manifest.to_json()).unwrap(),
            report.manifest
        );
    }
}
