//! Random vertex relabelling (legacy table-based API).
//!
//! Graph500 permutes vertex labels after generation so that the heavy
//! vertices are not trivially identifiable by their index.  The functions
//! here do that with a materialised permutation *table* — `O(V)` memory,
//! which is unusable at the paper's 10¹⁰-vertex designs — and are therefore
//! deprecated in favour of the O(1)-memory seeded Feistel bijection,
//! [`kron_gen::FeistelPermutation`], which the pipeline applies in-stream
//! via `Pipeline::permute_vertices(seed)` (or the
//! `kron_gen::PermuteSink` combinator).
//!
//! Both the table and the Feistel network are exact bijections, so every
//! exactly-known property (edge count, degree distribution, triangles) is
//! preserved by either — a fact the property tests below pin for both
//! implementations side by side.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A uniformly random permutation of `0..n`, deterministic for a given seed.
#[deprecated(
    since = "0.1.0",
    note = "the table costs O(V) memory; use kron_gen::FeistelPermutation (or \
            Pipeline::permute_vertices) for an O(1)-memory bijection"
)]
pub fn random_permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Relabel every endpoint of an edge list through the permutation
/// (`new_label = perm[old_label]`).
///
/// # Panics
/// Panics if an edge references a vertex outside `0..perm.len()`.
#[deprecated(
    since = "0.1.0",
    note = "use kron_gen::FeistelPermutation::apply_edge in-stream (or the \
            PermuteSink combinator) instead of materialising a relabelled copy"
)]
pub fn relabel_edges(edges: &[(u64, u64)], perm: &[u64]) -> Vec<(u64, u64)> {
    edges
        .iter()
        .map(|&(u, v)| {
            (
                perm[kron_sparse::addressable(u, "vertex id fits in usize")],
                perm[kron_sparse::addressable(v, "vertex id fits in usize")],
            )
        })
        .collect()
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated table is half of every comparison here
mod tests {
    use super::*;
    use crate::measure::measure_edge_list;
    use kron_gen::FeistelPermutation;

    #[test]
    fn permutation_is_a_bijection() {
        let perm = random_permutation(100, 7);
        assert_eq!(perm.len(), 100);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        assert_eq!(random_permutation(50, 1), random_permutation(50, 1));
        assert_ne!(random_permutation(50, 1), random_permutation(50, 2));
    }

    #[test]
    fn relabelling_preserves_structure() {
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (3, 3), (0, 1)];
        let perm = random_permutation(4, 13);
        let relabelled = relabel_edges(&edges, &perm);
        let before = measure_edge_list(4, &edges);
        let after = measure_edge_list(4, &relabelled);
        assert_eq!(before.raw_edges, after.raw_edges);
        assert_eq!(before.unique_edges, after.unique_edges);
        assert_eq!(before.self_loops, after.self_loops);
        assert_eq!(before.empty_vertices, after.empty_vertices);
        assert_eq!(before.degree_distribution, after.degree_distribution);
    }

    #[test]
    fn identity_permutation_for_tiny_graphs() {
        assert_eq!(random_permutation(0, 9), Vec::<u64>::new());
        assert_eq!(random_permutation(1, 9), vec![0]);
    }

    mod table_vs_feistel {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Both the legacy table and the Feistel network are exact
            /// bijections of [0, n) for any seed.
            #[test]
            fn both_relabellings_are_bijections(n in 1u64..600, seed in 0u64..u64::MAX) {
                let table = random_permutation(n, seed);
                let mut sorted = table.clone();
                sorted.sort_unstable();
                prop_assert_eq!(&sorted, &(0..n).collect::<Vec<u64>>());

                let feistel = FeistelPermutation::new(n, seed);
                let mut image: Vec<u64> = (0..n).map(|v| feistel.apply(v)).collect();
                image.sort_unstable();
                prop_assert_eq!(&image, &sorted);
            }

            /// Relabelling through either implementation preserves the
            /// degree histogram exactly (multiplicities, self-loops,
            /// empty-vertex count included).
            #[test]
            fn both_relabellings_preserve_the_degree_histogram(
                n in 1u64..64,
                seed in 0u64..u64::MAX,
                raw_edges in proptest::collection::vec((0u64..1000, 0u64..1000), 0..200),
            ) {
                let edges: Vec<(u64, u64)> =
                    raw_edges.iter().map(|&(u, v)| (u % n, v % n)).collect();
                let before = measure_edge_list(n, &edges);

                let table = random_permutation(n, seed);
                let via_table = relabel_edges(&edges, &table);
                let table_stats = measure_edge_list(n, &via_table);

                let feistel = FeistelPermutation::new(n, seed);
                let via_feistel: Vec<(u64, u64)> =
                    edges.iter().map(|&e| feistel.apply_edge(e)).collect();
                let feistel_stats = measure_edge_list(n, &via_feistel);

                for after in [&table_stats, &feistel_stats] {
                    prop_assert_eq!(before.raw_edges, after.raw_edges);
                    prop_assert_eq!(before.unique_edges, after.unique_edges);
                    prop_assert_eq!(before.self_loops, after.self_loops);
                    prop_assert_eq!(before.empty_vertices, after.empty_vertices);
                    prop_assert_eq!(&before.degree_distribution, &after.degree_distribution);
                }
            }
        }
    }
}
