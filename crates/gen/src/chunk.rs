//! Reusable fixed-capacity edge buffers.
//!
//! The chunked streaming pipeline hands consumers whole slices of edges
//! instead of one edge at a time: a worker fills an [`EdgeChunk`] from the
//! Kronecker expansion and flushes it to the sink whenever it is full.  The
//! buffer is allocated once per worker and reused for the entire run, so the
//! steady-state hot path performs no allocation at all, and the per-edge
//! closure dispatch of the original streaming API is amortized over
//! [`EdgeChunk::DEFAULT_CAPACITY`] edges per sink call.

/// A reusable fixed-capacity buffer of `(row, col)` edges.
#[derive(Debug, Clone)]
pub struct EdgeChunk {
    edges: Vec<(u64, u64)>,
    capacity: usize,
}

impl EdgeChunk {
    /// Default capacity: 64 Ki edges (1 MiB), small enough to stay cache- and
    /// allocator-friendly per worker, large enough to amortize sink calls to
    /// nothing.
    pub const DEFAULT_CAPACITY: usize = 64 * 1024;

    /// Create a chunk holding at most `capacity` edges (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EdgeChunk {
            edges: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Create a chunk with [`EdgeChunk::DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        EdgeChunk::new(Self::DEFAULT_CAPACITY)
    }

    /// Maximum number of edges the chunk holds between flushes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of edges currently buffered.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are buffered.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether the chunk must be flushed before the next push.
    pub fn is_full(&self) -> bool {
        self.edges.len() >= self.capacity
    }

    /// Number of edges that fit before the chunk is full.
    pub fn remaining(&self) -> usize {
        self.capacity - self.edges.len()
    }

    /// Buffer one edge.  The caller ensures the chunk is not full (the
    /// chunked expansion loops size their runs by [`EdgeChunk::remaining`]).
    #[inline]
    pub fn push(&mut self, row: u64, col: u64) {
        debug_assert!(!self.is_full(), "push into a full EdgeChunk");
        self.edges.push((row, col));
    }

    /// Buffer a translated run of factor entries: element `i` of the slices
    /// becomes the edge `(row_base + rows[i], col_base + cols[i])`.
    ///
    /// This is the vectorized fill behind the chunked expansion — an
    /// exact-size iterator extend, so the compiler emits one SIMD
    /// add-and-store loop with no per-edge length check.  The caller sizes
    /// the run to [`EdgeChunk::remaining`].
    #[inline]
    pub fn extend_translated(&mut self, row_base: u64, col_base: u64, rows: &[u64], cols: &[u64]) {
        debug_assert_eq!(rows.len(), cols.len(), "parallel index slices must match");
        debug_assert!(rows.len() <= self.remaining(), "run exceeds chunk capacity");
        self.edges.extend(
            rows.iter()
                .zip(cols.iter())
                .map(|(&r, &c)| (row_base + r, col_base + c)),
        );
    }

    /// Append `count` edges by handing `fill` a slice of spare capacity to
    /// write into — the bulk entry point for sources whose samplers fill
    /// whole buffers (the batched R-MAT walk), replacing `count` per-edge
    /// `push`/`is_full` round trips with one resize and one kernel call.
    /// The caller sizes the run to [`EdgeChunk::remaining`].
    #[inline]
    pub fn fill_spare(&mut self, count: usize, fill: impl FnOnce(&mut [(u64, u64)])) {
        debug_assert!(count <= self.remaining(), "run exceeds chunk capacity");
        let start = self.edges.len();
        self.edges.resize(start + count, (0, 0));
        fill(&mut self.edges[start..]);
    }

    /// The buffered edges.
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.edges
    }

    /// Discard all buffered edges, keeping the allocation.
    pub fn clear(&mut self) {
        self.edges.clear();
    }

    /// Hand any buffered edges to `sink` and clear the buffer.
    pub fn flush<F: FnMut(&[(u64, u64)])>(&mut self, sink: &mut F) {
        if !self.edges.is_empty() {
            sink(&self.edges);
            self.edges.clear();
        }
    }

    /// Hand any buffered edges to a fallible `sink`.  The buffer is cleared
    /// only on success; on error the edges stay buffered so nothing is
    /// silently dropped.
    pub fn try_flush<E, F: FnMut(&[(u64, u64)]) -> Result<(), E>>(
        &mut self,
        sink: &mut F,
    ) -> Result<(), E> {
        if !self.edges.is_empty() {
            sink(&self.edges)?;
            self.edges.clear();
        }
        Ok(())
    }
}

impl Default for EdgeChunk {
    fn default() -> Self {
        EdgeChunk::with_default_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_clamped_to_one() {
        let chunk = EdgeChunk::new(0);
        assert_eq!(chunk.capacity(), 1);
    }

    #[test]
    fn fill_flush_reuse() {
        let mut chunk = EdgeChunk::new(3);
        let mut flushed: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut sink = |edges: &[(u64, u64)]| flushed.push(edges.to_vec());

        for i in 0..3 {
            assert!(!chunk.is_full());
            chunk.push(i, i + 10);
        }
        assert!(chunk.is_full());
        assert_eq!(chunk.remaining(), 0);
        chunk.flush(&mut sink);
        assert!(chunk.is_empty());
        assert_eq!(chunk.remaining(), 3);

        chunk.push(9, 9);
        chunk.flush(&mut sink);
        // Empty flushes do not call the sink.
        chunk.flush(&mut sink);

        assert_eq!(flushed, vec![vec![(0, 10), (1, 11), (2, 12)], vec![(9, 9)]]);
    }
}
