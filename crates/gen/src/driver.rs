//! The out-of-core streaming shard driver.
//!
//! [`ParallelGenerator`](crate::generator::ParallelGenerator) materialises
//! every [`GraphBlock`](crate::block::GraphBlock) in memory, which caps it at
//! `max_total_edges`.  The shard driver removes that ceiling: each worker
//! expands its partition slice of `B_p ⊗ C` straight through
//! [`try_stream_block_edges_into`] into a pluggable per-worker [`EdgeSink`]
//! — a TSV shard, a binary shard, a pure edge counter, or an in-memory COO
//! block for tests — so the only memory a run needs is the two factors, one
//! [`EdgeChunk`] per worker, and one shared streaming degree accumulator.
//! The
//! single self-loop of the triangle-control construction is removed
//! *in-stream* by the one worker whose `B` slice produces it; no
//! post-generation pass over the shards is ever required.
//!
//! Alongside its sink, every worker feeds a streaming degree histogram with
//! the same chunks: private per-worker count vectors folded as each worker
//! finishes while `workers × vertices × 8` bytes fit
//! [`DriverConfig::max_histogram_bytes`], or one run-wide
//! [`SharedDegreeAccumulator`] (`O(vertices)` total, relaxed atomic
//! increments) beyond it.  The merged histogram yields the measured degree
//! distribution, edge count, and self-loop count of the generated graph,
//! from which [`ShardRun::validate`] reproduces the paper's
//! measured-equals-predicted check (Figure 4) without ever assembling the
//! graph — the full out-of-core design → generate → validate loop.

use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;

use kron_core::validate::{measure_from_histogram, validate_streamed, ValidationReport};
use kron_core::{CoreError, GraphProperties, KroneckerDesign};
use kron_sparse::reduce::SharedDegreeAccumulator;
use kron_sparse::{CooMatrix, DegreeAccumulator, SparseError};

use crate::chunk::EdgeChunk;
use crate::generator::self_loop_vertex_index;
use crate::partition::{csc_ordered_triples, Partition};
use crate::split::SplitPlan;
use crate::stats::GenerationStats;
use crate::stream::try_stream_block_edges_into;
use crate::writer::{
    prepare_directory, BlockFileSet, BlockFormat, BLOCK_HEADER_LEN, BLOCK_MAGIC,
    BLOCK_VERSION_PAIRS,
};

/// A per-worker consumer of generated edge chunks.
///
/// A sink receives every chunk its worker produces (already filtered of the
/// removable self-loop) and is finalised exactly once at the end of the
/// worker's stream.  Sinks that buffer nothing — writers, counters — keep
/// the whole run in bounded memory no matter how many edges pass through.
pub trait EdgeSink {
    /// What the sink leaves behind when the stream ends (a path, a count, a
    /// matrix, …).
    type Output;

    /// Consume one chunk of `(row, col)` edges with global indices.
    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError>;

    /// Finalise the sink (flush buffers, patch headers) and return its
    /// output.
    fn finish(self) -> Result<Self::Output, SparseError>;
}

/// An [`EdgeSink`] that only counts — the sink behind throughput
/// measurements and histogram-only validation runs.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    edges: u64,
}

impl CountingSink {
    /// Create a fresh counter.
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl EdgeSink for CountingSink {
    type Output = u64;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        self.edges += edges.len() as u64;
        Ok(())
    }

    fn finish(self) -> Result<u64, SparseError> {
        Ok(self.edges)
    }
}

/// An [`EdgeSink`] that materialises its worker's block as a COO matrix —
/// for tests and small graphs, where it makes the driver directly comparable
/// with [`crate::generator::ParallelGenerator`].
#[derive(Debug, Clone)]
pub struct CooSink {
    block: CooMatrix<u64>,
    rows: Vec<u64>,
    cols: Vec<u64>,
    ones: Vec<u64>,
}

impl CooSink {
    /// Create a sink collecting into a `vertices × vertices` pattern matrix.
    pub fn new(vertices: u64) -> Self {
        CooSink {
            block: CooMatrix::new(vertices, vertices),
            rows: Vec::new(),
            cols: Vec::new(),
            ones: Vec::new(),
        }
    }
}

impl EdgeSink for CooSink {
    type Output = CooMatrix<u64>;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        // De-interleave into reusable scratch buffers and append in bulk —
        // one capacity check per chunk instead of one per edge.
        self.rows.clear();
        self.cols.clear();
        self.rows.extend(edges.iter().map(|&(row, _)| row));
        self.cols.extend(edges.iter().map(|&(_, col)| col));
        if self.ones.len() < edges.len() {
            self.ones.resize(edges.len(), 1);
        }
        self.block
            .extend_from_triples(&self.rows, &self.cols, &self.ones[..edges.len()])
    }

    fn finish(self) -> Result<CooMatrix<u64>, SparseError> {
        Ok(self.block)
    }
}

/// An [`EdgeSink`] writing `row<TAB>col<TAB>1` triples through a buffered
/// writer — one TSV shard per worker.
///
/// Unlike [`crate::writer::stream_blocks_tsv`], which emits the *raw*
/// product (triangle-control self-loops included), shards written through
/// the driver contain the designed final graph: the removable self-loop is
/// filtered in-stream before the sink sees it.
pub struct TsvShardSink {
    writer: BufWriter<std::fs::File>,
    path: PathBuf,
}

impl TsvShardSink {
    /// Create the shard file at `path`.
    pub fn create(path: &Path) -> Result<Self, SparseError> {
        let file = std::fs::File::create(path)?;
        Ok(TsvShardSink {
            writer: BufWriter::with_capacity(1 << 18, file),
            path: path.to_path_buf(),
        })
    }
}

impl EdgeSink for TsvShardSink {
    type Output = PathBuf;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        crate::writer::write_tsv_edges(&mut self.writer, edges)?;
        Ok(())
    }

    fn finish(mut self) -> Result<PathBuf, SparseError> {
        self.writer.flush()?;
        Ok(self.path)
    }
}

/// An [`EdgeSink`] writing the interleaved binary shard layout
/// ([`BLOCK_VERSION_PAIRS`]): the shared block header with a zero entry
/// count, then `(row, col)` pairs appended as they stream; `finish` seeks
/// back and patches the true count into the header.  16 bytes per edge, no
/// buffering beyond the write buffer.
pub struct BinaryShardSink {
    writer: BufWriter<std::fs::File>,
    path: PathBuf,
    written: u64,
    scratch: Vec<u8>,
}

impl BinaryShardSink {
    /// Create the shard file at `path` for a `nrows × ncols` graph.
    pub fn create(path: &Path, nrows: u64, ncols: u64) -> Result<Self, SparseError> {
        let file = std::fs::File::create(path)?;
        let mut writer = BufWriter::with_capacity(1 << 18, file);
        writer.write_all(&BLOCK_MAGIC)?;
        writer.write_all(&BLOCK_VERSION_PAIRS.to_le_bytes())?;
        writer.write_all(&nrows.to_le_bytes())?;
        writer.write_all(&ncols.to_le_bytes())?;
        writer.write_all(&0u64.to_le_bytes())?; // patched by finish()
        Ok(BinaryShardSink {
            writer,
            path: path.to_path_buf(),
            written: 0,
            scratch: Vec::new(),
        })
    }
}

impl EdgeSink for BinaryShardSink {
    type Output = PathBuf;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        // Serialise the whole chunk into a reusable buffer and issue one
        // write per chunk, not two per edge.
        self.scratch.clear();
        self.scratch.reserve(16 * edges.len());
        for &(row, col) in edges {
            self.scratch.extend_from_slice(&row.to_le_bytes());
            self.scratch.extend_from_slice(&col.to_le_bytes());
        }
        self.writer.write_all(&self.scratch)?;
        self.written += edges.len() as u64;
        Ok(())
    }

    fn finish(mut self) -> Result<PathBuf, SparseError> {
        self.writer.flush()?;
        let mut file = self
            .writer
            .into_inner()
            .map_err(|e| SparseError::Io(e.to_string()))?;
        file.seek(SeekFrom::Start(BLOCK_HEADER_LEN - 8))?;
        file.write_all(&self.written.to_le_bytes())?;
        file.sync_data()?;
        Ok(self.path)
    }
}

/// Configuration of a shard-driver run.
///
/// Unlike [`crate::generator::GeneratorConfig`] there is no
/// `max_total_edges`: the driver never materialises the product, so only the
/// *factors* carry memory budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverConfig {
    /// Number of workers (rayon tasks; the paper's "processors").
    pub workers: usize,
    /// Memory budget for the replicated `C` factor, in stored entries.
    pub max_c_edges: u64,
    /// Memory budget for the partitioned `B` factor, in stored entries
    /// (each worker indexes a shared triple list of this size).
    pub max_b_edges: u64,
    /// Capacity of each worker's reusable [`EdgeChunk`].
    pub chunk_capacity: usize,
    /// Memory budget for the streaming degree histogram, in bytes.  While
    /// the peak of per-worker local count vectors — `(concurrent workers
    /// + 1) × vertices × 8` bytes, since a vector is folded and dropped the
    /// moment its worker finishes — fits the budget, each worker counts
    /// privately at full speed; beyond it the run switches to a single
    /// shared atomic vector — `O(vertices)` total no matter the worker
    /// count, at the price of one relaxed `fetch_add` per edge.
    pub max_histogram_bytes: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 4,
            max_c_edges: 1 << 20,
            max_b_edges: 1 << 24,
            chunk_capacity: EdgeChunk::DEFAULT_CAPACITY,
            max_histogram_bytes: 1 << 30,
        }
    }
}

/// The result of one shard-driver run.
#[derive(Debug, Clone)]
pub struct ShardRun<O> {
    /// Per-worker sink outputs, in worker order.
    pub outputs: Vec<O>,
    /// Number of rows/columns of the generated graph.
    pub vertices: u64,
    /// The split plan the run executed.
    pub split: SplitPlan,
    /// Exact predicted properties of the design.
    pub predicted: GraphProperties,
    /// Properties measured from the merged streaming degree histograms
    /// (triangles are never measured in streaming mode).
    pub measured: GraphProperties,
    /// Timing and balance statistics.
    pub stats: GenerationStats,
}

impl<O> ShardRun<O> {
    /// Total number of edges delivered to the sinks.
    pub fn edge_count(&self) -> u64 {
        self.stats.total_edges
    }

    /// The paper's Figure-4 check, streamed: compare the predicted
    /// properties with the histogram-measured ones, field by field.
    pub fn validate(&self) -> ValidationReport {
        validate_streamed(&self.predicted, &self.measured)
    }
}

/// The streaming shard driver.
#[derive(Debug, Clone, Default)]
pub struct ShardDriver {
    config: DriverConfig,
}

/// Everything one worker hands back when its stream ends.
struct WorkerResult<O> {
    output: O,
    delivered: u64,
}

/// One worker's view of the run's degree histogram: a private local vector
/// (fast, `O(vertices)` per concurrent worker) or the run-wide shared
/// atomic vector (`O(vertices)` total) — see
/// [`DriverConfig::max_histogram_bytes`].
enum WorkerHistogram<'a> {
    Local(DegreeAccumulator),
    Shared(&'a SharedDegreeAccumulator),
}

impl WorkerHistogram<'_> {
    fn record(&mut self, edges: &[(u64, u64)]) {
        match self {
            WorkerHistogram::Local(local) => local.record(edges),
            WorkerHistogram::Shared(shared) => shared.record(edges),
        }
    }
}

/// The design's vertex count as a `u64`, or [`CoreError::TooLargeToRealise`]
/// when the graph cannot be indexed on this machine at all.
fn realisable_vertices(design: &KroneckerDesign) -> Result<u64, CoreError> {
    design
        .vertices()
        .to_u64()
        .ok_or_else(|| CoreError::TooLargeToRealise {
            vertices: design.vertices().to_string(),
            edges: design.nnz_with_loops().to_string(),
        })
}

impl ShardDriver {
    /// Create a driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        ShardDriver { config }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Run the driver: expand `B_p ⊗ C` on every worker, stream the chunks
    /// into the sink `make_sink` creates for that worker, and accumulate the
    /// streaming degree histogram.  `split_index` selects the `B ⊗ C` split
    /// (see [`KroneckerDesign::split`]).
    ///
    /// The removable self-loop of a triangle-control design is dropped
    /// in-stream by the worker that owns the `B` diagonal triple, so the
    /// sinks receive exactly the designed final graph.
    pub fn run<S, F>(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        make_sink: F,
    ) -> Result<ShardRun<S::Output>, CoreError>
    where
        S: EdgeSink,
        S::Output: Send,
        F: Fn(usize) -> Result<S, SparseError> + Sync,
    {
        if self.config.workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "shard driver needs at least one worker".into(),
            });
        }
        let vertices = realisable_vertices(design)?;

        let (b_design, c_design) = design.split(split_index)?;
        // Both factors keep their self-loops: the raw product is exactly the
        // designed product, and the one surviving loop is filtered below.
        let b = b_design.realize_raw(self.config.max_b_edges)?;
        let c = c_design.realize_raw(self.config.max_c_edges)?;
        let triples = csc_ordered_triples(&b);
        let partition = Partition::even(triples.len(), self.config.workers);
        let split_plan = SplitPlan {
            split_index,
            b_nnz: b_design.nnz_with_loops(),
            c_nnz: c_design.nnz_with_loops(),
            c_vertices: c_design.vertices(),
        };

        // The product self-loop lands in the worker whose B slice holds the
        // diagonal triple (v_B, v_B); that worker filters the single global
        // edge (v, v) out of its stream.
        let loop_filter: Option<(usize, u64)> = if design.has_removable_self_loop() {
            let b_loop = self_loop_vertex_index(&b_design);
            let position = triples
                .iter()
                .position(|&(r, c, _)| r == b_loop && c == b_loop)
                .expect("a triangle-control B factor has exactly one diagonal triple");
            let owner = (0..self.config.workers)
                .find(|&w| partition.range(w).contains(&position))
                .expect("every triple index belongs to one worker");
            Some((owner, self_loop_vertex_index(design)))
        } else {
            None
        };

        let started = Instant::now();
        // Local accumulators are folded and dropped as each worker finishes,
        // so at most one per pool thread is live at once (plus the merged
        // one) — size the budget check on that peak, not the worker count.
        let concurrent = self.config.workers.min(rayon::current_num_threads()) + 1;
        let local_histogram_bytes = (concurrent as u128) * (vertices as u128) * 8;
        let shared = if local_histogram_bytes > u128::from(self.config.max_histogram_bytes) {
            Some(SharedDegreeAccumulator::rows_only(vertices, vertices))
        } else {
            None
        };
        let merged_local: Mutex<Option<DegreeAccumulator>> = Mutex::new(None);
        let worker_results: Vec<Result<WorkerResult<S::Output>, CoreError>> =
            (0..self.config.workers)
                .into_par_iter()
                .map(|worker| {
                    let slice = &triples[partition.range(worker)];
                    let mut sink = make_sink(worker).map_err(CoreError::Sparse)?;
                    let mut accumulator = match shared.as_ref() {
                        Some(shared) => WorkerHistogram::Shared(shared),
                        None => {
                            WorkerHistogram::Local(DegreeAccumulator::rows_only(vertices, vertices))
                        }
                    };
                    let mut chunk = EdgeChunk::new(self.config.chunk_capacity);
                    let filter =
                        loop_filter.and_then(|(owner, vertex)| (owner == worker).then_some(vertex));
                    let mut removed = false;
                    let produced = try_stream_block_edges_into(slice, &c, &mut chunk, |edges| {
                        if let Some(vertex) = filter {
                            if !removed {
                                if let Some(at) =
                                    edges.iter().position(|&(r, c)| r == vertex && c == vertex)
                                {
                                    removed = true;
                                    accumulator.record(&edges[..at]);
                                    sink.consume(&edges[..at])?;
                                    accumulator.record(&edges[at + 1..]);
                                    return sink.consume(&edges[at + 1..]);
                                }
                            }
                        }
                        accumulator.record(edges);
                        sink.consume(edges)
                    })
                    .map_err(CoreError::Sparse)?;
                    if filter.is_some() {
                        debug_assert!(removed, "the owning worker must see the product loop");
                    }
                    let output = sink.finish().map_err(CoreError::Sparse)?;
                    // A local histogram is folded into the run-wide one the
                    // moment its worker finishes and is dropped here, so the
                    // peak is bounded by the workers running concurrently.
                    if let WorkerHistogram::Local(local) = accumulator {
                        let mut guard = merged_local.lock().expect("histogram mutex poisoned");
                        match guard.as_mut() {
                            Some(acc) => acc.merge(&local),
                            None => *guard = Some(local),
                        }
                    }
                    Ok(WorkerResult {
                        output,
                        delivered: produced - u64::from(removed),
                    })
                })
                .collect();
        let elapsed = started.elapsed();

        let mut outputs = Vec::with_capacity(self.config.workers);
        let mut delivered = Vec::with_capacity(self.config.workers);
        for result in worker_results {
            let result = result?;
            outputs.push(result.output);
            delivered.push(result.delivered);
        }
        let (histogram, self_loops, recorded) = match shared {
            Some(shared) => (
                shared.row_histogram(),
                shared.self_loop_count(),
                shared.edge_count(),
            ),
            None => {
                let merged = merged_local
                    .into_inner()
                    .expect("histogram mutex poisoned")
                    .expect("at least one worker ran");
                (
                    merged.row_histogram(),
                    merged.self_loop_count(),
                    merged.edge_count(),
                )
            }
        };
        let measured = measure_from_histogram(vertices, &histogram, self_loops);
        let stats = GenerationStats::new(delivered, elapsed);
        debug_assert_eq!(stats.total_edges, recorded);

        Ok(ShardRun {
            outputs,
            vertices,
            split: split_plan,
            predicted: design.properties(),
            measured,
            stats,
        })
    }

    /// Run with a [`CountingSink`] per worker: generation and streamed
    /// validation with no output at all — the cheapest way to reproduce
    /// measured-equals-predicted at scales far beyond memory for edges.
    pub fn run_counting(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
    ) -> Result<ShardRun<u64>, CoreError> {
        self.run::<CountingSink, _>(design, split_index, |_| Ok(CountingSink::new()))
    }

    /// Run with an in-memory [`CooSink`] per worker (tests and small
    /// graphs).
    pub fn run_coo(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
    ) -> Result<ShardRun<CooMatrix<u64>>, CoreError> {
        let vertices = realisable_vertices(design)?;
        self.run::<CooSink, _>(design, split_index, |_| Ok(CooSink::new(vertices)))
    }

    /// Run with one TSV shard per worker under `directory`.
    pub fn run_tsv(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        directory: &Path,
    ) -> Result<(ShardRun<PathBuf>, BlockFileSet), CoreError> {
        let files = prepare_directory(directory, self.config.workers, "tsv")?;
        let run = self.run::<TsvShardSink, _>(design, split_index, |worker| {
            TsvShardSink::create(&files[worker])
        })?;
        let set = BlockFileSet {
            directory: directory.to_path_buf(),
            files,
            vertices: run.vertices,
            format: BlockFormat::Tsv,
        };
        Ok((run, set))
    }

    /// Run with one interleaved binary shard per worker under `directory`.
    pub fn run_binary(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        directory: &Path,
    ) -> Result<(ShardRun<PathBuf>, BlockFileSet), CoreError> {
        let vertices = realisable_vertices(design)?;
        let files = prepare_directory(directory, self.config.workers, "kbk")?;
        let run = self.run::<BinaryShardSink, _>(design, split_index, |worker| {
            BinaryShardSink::create(&files[worker], vertices, vertices)
        })?;
        let set = BlockFileSet {
            directory: directory.to_path_buf(),
            files,
            vertices: run.vertices,
            format: BlockFormat::Binary,
        };
        Ok((run, set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, ParallelGenerator};
    use kron_bignum::BigUint;
    use kron_core::SelfLoop;

    fn driver(workers: usize) -> ShardDriver {
        ShardDriver::new(DriverConfig {
            workers,
            max_c_edges: 100_000,
            max_b_edges: 1 << 20,
            chunk_capacity: 512,
            ..DriverConfig::default()
        })
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kron_gen_driver_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn streamed_validation_is_exact_for_every_self_loop_variant() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
            let run = driver(4).run_counting(&design, 2).unwrap();
            let report = run.validate();
            assert!(
                report.is_exact_match(),
                "streamed validation failed for {self_loop:?}: {:?}",
                report.failures()
            );
            assert_eq!(BigUint::from(run.edge_count()), design.edges());
        }
    }

    #[test]
    fn coo_sinks_reproduce_the_materialising_generator_exactly() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5], self_loop).unwrap();
            for workers in [1usize, 2, 5] {
                let run = driver(workers).run_coo(&design, 1).unwrap();
                let mut streamed = CooMatrix::new(run.vertices, run.vertices);
                for block in &run.outputs {
                    streamed.append(block).unwrap();
                }
                let reference = ParallelGenerator::new(GeneratorConfig {
                    workers,
                    max_c_edges: 100_000,
                    max_total_edges: 1_000_000,
                })
                .generate_with_split(&design, 1)
                .unwrap();
                let mut materialised = reference.assemble();
                streamed.sort();
                materialised.sort();
                assert_eq!(
                    streamed, materialised,
                    "driver disagrees with generator for {self_loop:?} × {workers} workers"
                );
            }
        }
    }

    #[test]
    fn in_stream_loop_removal_crosses_chunk_boundaries() {
        // Chunk capacity 1 forces the loop edge to sit alone in its chunk;
        // capacity 7 makes it land mid-chunk.  Both must remove exactly one
        // edge and still validate.
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        for chunk_capacity in [1usize, 7, 4096] {
            let driver = ShardDriver::new(DriverConfig {
                workers: 3,
                chunk_capacity,
                ..DriverConfig::default()
            });
            let run = driver.run_counting(&design, 1).unwrap();
            assert_eq!(BigUint::from(run.edge_count()), design.edges());
            assert!(run.validate().is_exact_match());
            assert_eq!(run.measured.self_loops, BigUint::zero());
        }
    }

    #[test]
    fn driver_has_no_total_edge_ceiling() {
        // 276,480 edges exceeds this generator's max_total_edges ceiling …
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::None).unwrap();
        let config = GeneratorConfig {
            workers: 4,
            max_c_edges: 100_000,
            max_total_edges: 100_000,
        };
        assert!(matches!(
            ParallelGenerator::new(config).generate_with_split(&design, 2),
            Err(CoreError::TooLargeToRealise { .. })
        ));
        // … but streams and validates fine through the driver.
        let run = driver(4).run_counting(&design, 2).unwrap();
        assert_eq!(run.edge_count(), 276_480);
        assert!(run.validate().is_exact_match());
    }

    #[test]
    fn zero_workers_rejected_with_typed_error() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(matches!(
            driver(0).run_counting(&design, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn binary_shards_round_trip_through_disk() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let dir = temp_dir("binary_shards");
        let (run, files) = driver(3).run_binary(&design, 1, &dir).unwrap();
        assert!(run.validate().is_exact_match());

        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);

        // Shared header + 16 bytes per edge, exactly.
        for (file, edges) in files.files.iter().zip(run.stats.edges_per_worker.iter()) {
            let len = std::fs::metadata(file).unwrap().len();
            assert_eq!(len, BLOCK_HEADER_LEN + 16 * edges);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tsv_shards_round_trip_through_disk() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Leaf).unwrap();
        let dir = temp_dir("tsv_shards");
        let (run, files) = driver(2).run_tsv(&design, 2, &dir).unwrap();
        assert!(run.validate().is_exact_match());

        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_and_local_histogram_modes_measure_identically() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let local = driver(4).run_counting(&design, 2).unwrap();
        // A zero budget forces the shared atomic vector on the same run.
        let shared_driver = ShardDriver::new(DriverConfig {
            max_histogram_bytes: 0,
            ..driver(4).config().clone()
        });
        let shared = shared_driver.run_counting(&design, 2).unwrap();
        assert_eq!(local.measured, shared.measured);
        assert_eq!(local.edge_count(), shared.edge_count());
        assert!(shared.validate().is_exact_match());
    }

    #[test]
    fn more_workers_than_triples_still_validates() {
        let design = KroneckerDesign::from_star_points(&[2, 2], SelfLoop::Centre).unwrap();
        let run = driver(32).run_counting(&design, 1).unwrap();
        assert_eq!(BigUint::from(run.edge_count()), design.edges());
        assert!(run.validate().is_exact_match());
        assert_eq!(run.outputs.len(), 32);
    }
}
