//@ path: crates/core/src/lib.rs
//@ expect: missing-forbid-unsafe@1
pub mod under_test;
