//@ path: crates/gen/src/under_test.rs
use std::fs::File;
use std::path::Path;

pub fn dump(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes) //~ raw-fs-shard
}

pub fn open_new(path: &Path) -> std::io::Result<File> {
    File::create(path) //~ raw-fs-shard
}

pub fn publish(tmp: &Path, path: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, path) //~ raw-fs-shard
}

pub fn append(path: &Path) -> std::io::Result<File> {
    std::fs::OpenOptions::new().append(true).open(path) //~ raw-fs-shard
}

// Reading is unrestricted: only creation/rename must take the atomic path.
pub fn read_back(path: &Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}
