//! Triangle counting.
//!
//! The paper computes the number of triangles of an adjacency matrix `A`
//! (symmetric, pattern-only) as
//!
//! ```text
//! N_tri(A) = (1/6) · 1ᵀ((A·A) ⊗ A)1
//! ```
//!
//! where `·` is the matrix product and `⊗` the element-wise product.  The
//! same quantity factorises over Kronecker products, which is what the
//! design layer exploits; this module provides the *measured* count used to
//! validate realised graphs, plus a raw (un-divided) form that stays exact
//! for matrices containing self-loops.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::ops::{ewise_mul, spgemm, sum_all_coo};
use crate::semiring::PlusTimes;

/// The raw triangle sum `1ᵀ((A·A) ⊗ A)1` without the division by six.
///
/// Only the sparsity *pattern* of `a` is used (stored values are treated as
/// 1), matching the paper's unweighted adjacency-matrix formula.  For a
/// simple symmetric adjacency matrix this is six times the triangle count;
/// for matrices with self-loops it is the quantity the paper's
/// per-constituent correction formulas consume.
pub fn triangle_raw_sum(a: &CsrMatrix<u64>) -> Result<u64, SparseError> {
    let pattern_coo = a.to_coo().map_values(|_| 1u64);
    let pattern = CsrMatrix::from_coo::<PlusTimes>(&pattern_coo)?;
    let aa = spgemm::<u64, PlusTimes>(&pattern, &pattern)?;
    let masked = ewise_mul::<u64, PlusTimes>(&aa.to_coo(), &pattern_coo)?;
    Ok(sum_all_coo::<u64, PlusTimes>(&masked))
}

/// Count the triangles of a simple (no self-loop) symmetric adjacency matrix
/// using the paper's formula `1ᵀ((A·A) ⊗ A)1 / 6`.
///
/// Returns an error if the matrix is not square.  The caller is responsible
/// for the matrix being symmetric and loop-free; use
/// [`crate::select::strip_diagonal`] first when needed.
pub fn count_triangles(a: &CsrMatrix<u64>) -> Result<u64, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "count_triangles",
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (a.ncols() as u64, a.nrows() as u64),
        });
    }
    let raw = triangle_raw_sum(a)?;
    debug_assert_eq!(
        raw % 6,
        0,
        "triangle raw sum of a simple graph must be divisible by 6"
    );
    Ok(raw / 6)
}

/// Count triangles from a COO adjacency matrix (convenience wrapper).
///
/// Uses the degree-ordered counter ([`count_triangles_oriented`]), which is
/// the right default for power-law graphs: the linear-algebra formula
/// materialises `A·A`, whose hub rows are quadratically dense exactly when
/// the degree distribution is heavy-tailed.
pub fn count_triangles_coo(a: &CooMatrix<u64>) -> Result<u64, SparseError> {
    let csr = CsrMatrix::from_coo::<PlusTimes>(a)?;
    count_triangles_oriented(&csr)
}

/// Count triangles with the degree-ordered ("forward") algorithm: orient
/// every edge from the lower-ranked to the higher-ranked endpoint (rank =
/// degree, ties by index), then intersect out-neighbour lists.  Work is
/// `Σ_edges min(deg u, deg v)`-ish, which stays small on the hub-dominated
/// graphs the star-product designs produce, and no `A·A` is ever formed.
pub fn count_triangles_oriented(a: &CsrMatrix<u64>) -> Result<u64, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "count_triangles_oriented",
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (a.ncols() as u64, a.nrows() as u64),
        });
    }
    let n = a.nrows();
    // Rank vertices by (degree, index); lower rank = lower degree.
    let degrees: Vec<usize> = (0..n).map(|v| a.row_nnz(v)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| (degrees[v], v));
    let mut rank = vec![0usize; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v] = r;
    }
    // Oriented adjacency: keep u -> v only when rank[u] < rank[v]; store
    // neighbour ranks sorted so intersections are ordered merges.
    let mut oriented: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in 0..n {
        let (cols, _) = a.row(u);
        for &v in cols {
            if u != v && rank[u] < rank[v] {
                oriented[u].push(rank[v]);
            }
        }
        oriented[u].sort_unstable();
    }
    let mut count = 0u64;
    for u in 0..n {
        let u_out = &oriented[u];
        for (slot, &rv) in u_out.iter().enumerate() {
            let v = order[rv];
            let v_out = &oriented[v];
            // Intersect the tails of both sorted rank lists.
            let mut i = slot + 1;
            let mut j = 0usize;
            while i < u_out.len() && j < v_out.len() {
                match u_out[i].cmp(&v_out[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    Ok(count)
}

/// Count triangles with an ordered wedge-merge algorithm (no matrix product).
///
/// For each vertex `v` the neighbours with larger index form a candidate set;
/// every edge inside that set closes a triangle.  This is the classic
/// merge-based counter and serves as an independent cross-check of the
/// linear-algebra formula in tests and benches.
pub fn count_triangles_merge(a: &CsrMatrix<u64>) -> Result<u64, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "count_triangles_merge",
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (a.ncols() as u64, a.nrows() as u64),
        });
    }
    let n = a.nrows();
    let mut count = 0u64;
    for u in 0..n {
        let (u_neighbours, _) = a.row(u);
        for &v in u_neighbours.iter().filter(|&&v| v > u) {
            // Count common neighbours w of u and v with w > v.
            let (v_neighbours, _) = a.row(v);
            let mut i = u_neighbours.partition_point(|&w| w <= v);
            let mut j = v_neighbours.partition_point(|&w| w <= v);
            while i < u_neighbours.len() && j < v_neighbours.len() {
                match u_neighbours[i].cmp(&v_neighbours[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::strip_diagonal;

    fn csr_from_undirected(n: u64, edges: &[(u64, u64)]) -> CsrMatrix<u64> {
        let mut all = Vec::new();
        for &(u, v) in edges {
            all.push((u, v));
            if u != v {
                all.push((v, u));
            }
        }
        let coo = CooMatrix::from_edges(n, n, all).unwrap();
        CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap()
    }

    #[test]
    fn triangle_free_graphs() {
        // A star has no triangles.
        let star = csr_from_undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(count_triangles(&star).unwrap(), 0);
        // A 4-cycle has no triangles.
        let cycle = csr_from_undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&cycle).unwrap(), 0);
    }

    #[test]
    fn single_triangle() {
        let tri = csr_from_undirected(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&tri).unwrap(), 1);
        assert_eq!(count_triangles_merge(&tri).unwrap(), 1);
        assert_eq!(count_triangles_oriented(&tri).unwrap(), 1);
        assert_eq!(triangle_raw_sum(&tri).unwrap(), 6);
    }

    #[test]
    fn oriented_counter_on_hub_dominated_graph() {
        // A star with an extra edge between two leaves: exactly one triangle,
        // and the hub's high degree must not blow up the oriented counter.
        let mut edges: Vec<(u64, u64)> = (1..200u64).map(|leaf| (0, leaf)).collect();
        edges.push((1, 2));
        let g = csr_from_undirected(200, &edges);
        assert_eq!(count_triangles_oriented(&g).unwrap(), 1);
        assert_eq!(count_triangles(&g).unwrap(), 1);
        let rect = CsrMatrix::<u64>::zeros(2, 3);
        assert!(count_triangles_oriented(&rect).is_err());
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let k5 = csr_from_undirected(5, &edges);
        assert_eq!(count_triangles(&k5).unwrap(), 10);
        assert_eq!(count_triangles_merge(&k5).unwrap(), 10);
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = csr_from_undirected(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(count_triangles(&g).unwrap(), 2);
        assert_eq!(count_triangles_merge(&g).unwrap(), 2);
    }

    #[test]
    fn coo_wrapper_and_self_loop_handling() {
        // Self-loops must be stripped before counting simple triangles.
        let mut edges = vec![(0u64, 0u64)];
        edges.extend([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let coo = CooMatrix::from_edges(3, 3, edges).unwrap();
        let stripped = strip_diagonal(&coo);
        assert_eq!(count_triangles_coo(&stripped).unwrap(), 1);
    }

    #[test]
    fn rectangular_rejected() {
        let m = CsrMatrix::<u64>::zeros(2, 3);
        assert!(count_triangles(&m).is_err());
        assert!(count_triangles_merge(&m).is_err());
    }

    #[test]
    fn paper_figure2_top_case_star_product_with_loops() {
        // Kronecker product of two stars (m̂=5 and m̂=3) with self-loops on the
        // central vertices, then the final (1,1) self-loop removed, has 15
        // triangles (Figure 2, top).
        use crate::kron::kron_coo;
        let star_with_loop = |points: u64| {
            let mut edges = vec![(0u64, 0u64)];
            for leaf in 1..=points {
                edges.push((0, leaf));
                edges.push((leaf, 0));
            }
            CooMatrix::from_edges(points + 1, points + 1, edges).unwrap()
        };
        let a = star_with_loop(5);
        let b = star_with_loop(3);
        let product = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        // Remove the single (0,0) self-loop as the paper prescribes.
        let cleaned = product.filter(|r, c, _| !(r == 0 && c == 0));
        assert_eq!(count_triangles_coo(&cleaned).unwrap(), 15);
    }

    #[test]
    fn paper_figure2_bottom_case_leaf_loops() {
        // Self-loops on one leaf vertex of each star: the resulting graph has
        // 3 triangles before the final self-loop is removed, 1 after
        // removing... the paper's Figure 2 (bottom) reports 3 triangles for
        // the graph including the leaf self-loop product vertex; removing the
        // final (m,m) loop leaves 1 triangle through each remaining loop pair.
        use crate::kron::kron_coo;
        let star_with_leaf_loop = |points: u64| {
            let mut edges = vec![(points, points)];
            for leaf in 1..=points {
                edges.push((0, leaf));
                edges.push((leaf, 0));
            }
            CooMatrix::from_edges(points + 1, points + 1, edges).unwrap()
        };
        let a = star_with_leaf_loop(5);
        let b = star_with_leaf_loop(3);
        let product = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        let m = product.nrows();
        let cleaned = product.filter(|r, c, _| !(r == m - 1 && c == m - 1));
        // One triangle survives: centre–leaf–loop-vertex through the remaining
        // self-loops of the constituent graphs.
        let count = count_triangles_coo(&cleaned).unwrap();
        assert_eq!(count, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random simple undirected graph on `n` vertices.
    fn arb_graph() -> impl Strategy<Value = CsrMatrix<u64>> {
        (2u64..12).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n), 0..40).prop_map(move |pairs| {
                let mut edges = Vec::new();
                for (u, v) in pairs {
                    if u != v {
                        edges.push((u, v));
                        edges.push((v, u));
                    }
                }
                let coo = CooMatrix::from_edges(n, n, edges).unwrap();
                CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap()
            })
        })
    }

    proptest! {
        #[test]
        fn formula_matches_merge_count(g in arb_graph()) {
            prop_assert_eq!(count_triangles(&g).unwrap(), count_triangles_merge(&g).unwrap());
        }

        #[test]
        fn oriented_matches_formula(g in arb_graph()) {
            prop_assert_eq!(count_triangles_oriented(&g).unwrap(), count_triangles(&g).unwrap());
        }

        #[test]
        fn raw_sum_is_six_times_count(g in arb_graph()) {
            prop_assert_eq!(triangle_raw_sum(&g).unwrap(), 6 * count_triangles(&g).unwrap());
        }
    }
}
