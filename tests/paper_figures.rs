//! Integration tests that pin the exact numbers of every figure in the
//! paper's evaluation (the same values EXPERIMENTS.md reports).

use extreme_graphs::bignum::BigUint;
use extreme_graphs::core::powerlaw::star_products_unique;
use extreme_graphs::{KroneckerDesign, SelfLoop};

fn big(s: &str) -> BigUint {
    s.parse().unwrap()
}

#[test]
fn figure1_bipartite_star_product() {
    let design = KroneckerDesign::from_star_points(&[5, 3], SelfLoop::None).unwrap();
    let dist = design.degree_distribution();
    // n(d) = 15/d at d ∈ {1, 3, 5, 15}.
    assert_eq!(dist.count(&big("1")), big("15"));
    assert_eq!(dist.count(&big("3")), big("5"));
    assert_eq!(dist.count(&big("5")), big("3"));
    assert_eq!(dist.count(&big("15")), big("1"));
    assert_eq!(dist.support_size(), 4);
    assert_eq!(design.triangles().unwrap(), BigUint::zero());
}

#[test]
fn figure2_triangle_control() {
    let many = KroneckerDesign::from_star_points(&[5, 3], SelfLoop::Centre).unwrap();
    assert_eq!(many.triangles().unwrap(), big("15"));
    let some = KroneckerDesign::from_star_points(&[5, 3], SelfLoop::Leaf).unwrap();
    assert_eq!(some.triangles().unwrap(), big("1"));
}

#[test]
fn figure3_trillion_edge_generation_design() {
    // B: 530,400 vertices / 13,824,000 edges; C: 21,074 vertices / 82,944
    // edges; A = B ⊗ C: 11,177,649,600 vertices / 1,146,617,856,000 edges,
    // zero triangles.
    let full =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::None).unwrap();
    let (b, c) = full.split(6).unwrap();
    assert_eq!(b.vertices(), big("530400"));
    assert_eq!(b.edges(), big("13824000"));
    assert_eq!(c.vertices(), big("21074"));
    assert_eq!(c.edges(), big("82944"));
    assert_eq!(full.vertices(), big("11177649600"));
    assert_eq!(full.edges(), big("1146617856000"));
    assert_eq!(full.triangles().unwrap(), BigUint::zero());
}

#[test]
fn figure4_trillion_edge_validation_design() {
    let design =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::Centre)
            .unwrap();
    assert_eq!(design.vertices(), big("11177649600"));
    assert_eq!(design.edges(), big("1853002140758"));
    assert_eq!(design.triangles().unwrap(), big("6777007252427"));
    // The paper's caption also reports the edge/vertex ratio 165.7774.
    let ratio = design.properties().edge_vertex_ratio();
    assert!((ratio - 165.7774).abs() < 0.001, "ratio = {ratio}");
}

#[test]
fn figure5_quadrillion_edge_power_law() {
    let design =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256, 625], SelfLoop::None)
            .unwrap();
    assert_eq!(design.vertices(), big("6997208649600"));
    assert_eq!(design.edges(), big("1433272320000000"));
    assert_eq!(design.triangles().unwrap(), BigUint::zero());
    // The distribution follows the exact power law n(d) = c/d.
    let constant = design.degree_distribution().perfect_power_law_constant();
    assert!(constant.is_some());
    assert!(star_products_unique(&[3, 4, 5, 9, 16, 25, 81, 256, 625]));
}

#[test]
fn figure6_quadrillion_edge_with_triangles() {
    let design =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256, 625], SelfLoop::Centre)
            .unwrap();
    assert_eq!(design.vertices(), big("6997208649600"));
    assert_eq!(design.edges(), big("2318105678089508"));
    // Exact value; the paper's caption (…426) differs by one unit in the
    // last place, consistent with double-precision rounding above 2^53.
    assert_eq!(design.triangles().unwrap(), big("12720651636552427"));
    // Centre loops pull the distribution slightly off the perfect line.
    assert_eq!(
        design.degree_distribution().perfect_power_law_constant(),
        None
    );
}

#[test]
fn figure7_decetta_scale_design() {
    let design = KroneckerDesign::from_star_points(
        &[
            3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641,
        ],
        SelfLoop::Leaf,
    )
    .unwrap();
    assert_eq!(design.vertices(), big("144111718793178936483840000"));
    assert_eq!(design.edges(), big("2705963586782877716483871216764"));
    assert_eq!(design.triangles().unwrap(), big("178940587"));
    // The degree distribution is exact and has a manageable support size even
    // though the graph itself could never be materialised.
    let dist = design.degree_distribution();
    assert!(dist.support_size() > 1000);
    assert_eq!(dist.total_vertices(), big("144111718793178936483840000"));
    assert_eq!(
        dist.total_edge_endpoints(),
        big("2705963586782877716483871216764")
    );
}

#[test]
fn prose_constituent_lists_are_inconsistent_with_quoted_counts() {
    // The paper's §VI prose lists B's stars as m̂ = {3,4,5,9,16}, but the
    // quoted 530,400 vertices / 13,824,000 edges require m̂ = {3,4,5,9,16,25}.
    // Record the discrepancy: the five-star set gives different counts.
    let five = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::None).unwrap();
    assert_ne!(five.vertices(), big("530400"));
    assert_ne!(five.edges(), big("13824000"));
    let six = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25], SelfLoop::None).unwrap();
    assert_eq!(six.vertices(), big("530400"));
    assert_eq!(six.edges(), big("13824000"));
}
