//! # kron-gen
//!
//! Communication-free parallel generation of Kronecker power-law graphs —
//! the implementation of §V of Kepner et al. (2018).
//!
//! The algorithm:
//!
//! 1. Split the design `A = ⊗_k A_k` into two factors `A = B ⊗ C` such that
//!    both factors fit comfortably in one worker's memory
//!    ([`split::choose_split`]).
//! 2. Extract the non-zero triples of `B` in column-major (CSC) order and
//!    hand each of the `N_p` workers a contiguous, equal-size slice
//!    ([`partition::Partition`]).
//! 3. Each worker independently forms its block `A_p = B_p ⊗ C`
//!    ([`block::GraphBlock`]) — no inter-worker communication is needed, and
//!    every worker produces the same number of edges.
//! 4. The blocks together are exactly the designed graph; the single
//!    self-loop of the triangle-control construction is removed from
//!    whichever block contains it ([`generator::ParallelGenerator`]).
//! 5. Properties (degree distribution, edge counts, balance, max degree,
//!    power-law fit, custom metrics) are measured in-stream by the
//!    pluggable [`metrics`] engine without ever assembling the full graph,
//!    reproducing the paper's "measured = predicted" validation at whatever
//!    scale fits the machine — and the [`replay`] source streams existing
//!    shard sets back through the same engine, so any graph on disk can be
//!    re-validated, permuted, filtered, or re-sharded without
//!    regeneration.
//! 6. The whole line — design, split, partition, chunked expand, sink,
//!    streamed validation — is one API: the [`pipeline::Pipeline`] builder,
//!    generic over a pluggable [`source::EdgeSource`].  The exact Kronecker
//!    expansion ([`source::KroneckerSource`]), the raw `B ⊗ C` product, and
//!    non-Kronecker generators (the R-MAT sampler in `kron-rmat`) all
//!    stream through the same terminals.  Each worker streams its share of
//!    the source straight into a pluggable [`sink::EdgeSink`] (TSV shard,
//!    binary shard, counter, COO block, or any custom impl — [`sink`] also
//!    provides tee/filter-map/permute combinators and a degree-only
//!    validator) while accumulating the degree histogram in `O(vertices)`
//!    memory, so generation *and* validation both run as bounded-memory
//!    streams at scales whose edges never fit in memory.  An optional
//!    in-stream [`permute::FeistelPermutation`] stage relabels vertices in
//!    O(1) memory (Graph500's shuffle without the `O(V)` table).  Every run
//!    yields a [`manifest::RunManifest`] reproducibility record — source
//!    kind and seeds included — written as `manifest.json` next to file
//!    output.  The earlier entry points — the materialising
//!    [`generator::ParallelGenerator`] and the out-of-core
//!    [`driver::ShardDriver`] — survive as deprecated thin wrappers over
//!    the pipeline.
//!
//! On a shared-memory machine the "processors" are rayon tasks; the
//! per-worker work and the communication structure (none) are identical to
//! the paper's distributed setting, so the scaling *shape* — linear in the
//! number of workers until memory bandwidth saturates — carries over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod chunk;
pub mod codec;
pub mod driver;
pub mod fault;
pub mod generator;
pub mod manifest;
pub mod measure;
pub mod metrics;
pub mod partition;
pub mod permute;
pub mod pipeline;
pub mod replay;
pub mod scaling;
pub mod sink;
pub mod source;
pub mod split;
pub mod stats;
pub mod stream;
pub mod writer;

pub use block::GraphBlock;
pub use chunk::EdgeChunk;
pub use driver::{DriverConfig, ShardDriver, ShardRun};
pub use fault::{FaultKind, FaultSchedule, FaultySink, FaultySource, PlannedFault};
pub use generator::{DistributedGraph, GeneratorConfig, ParallelGenerator};
pub use manifest::{
    JournalHeader, ProgressJournal, RunManifest, ShardRecord, MANIFEST_FILE_NAME,
    PROGRESS_FILE_NAME,
};
pub use measure::{measured_degree_distribution, measured_properties, BalanceReport};
pub use metrics::{
    MetricContext, MetricObserver, MetricRecord, MetricSuite, MetricsReport, PredicateCountMetric,
    StreamingMetric,
};
pub use partition::Partition;
pub use permute::FeistelPermutation;
pub use pipeline::{
    DesignPipeline, Pipeline, RetryPolicy, RunReport, SelfLoopPolicy, ShardFailure,
};
pub use replay::ReplaySource;
pub use scaling::{ScalingModel, ScalingPoint};
pub use sink::{
    BinaryShardSink, CooSink, CountingSink, DegreeOnlySink, EdgeSink, FilterMapSink, PermuteSink,
    TeeSink, TsvShardSink,
};
pub use source::{EdgeSource, KroneckerSource, SourceDescriptor, SourceRun};
pub use split::{choose_split, choose_split_with_fallback, SplitPlan};
pub use stats::GenerationStats;
pub use stream::{
    count_block_edges, count_edges_streaming, stream_block_edges, stream_block_edges_chunked,
    stream_block_edges_into, try_stream_block_edges_into,
};
#[allow(deprecated)] // the legacy path must keep compiling at its old address
pub use writer::stream_blocks_tsv;
pub use writer::{
    read_block_bin, shard_checksum, stream_block_tsv, write_block_bin, write_blocks_bin,
    write_blocks_tsv, BlockFileSet, BlockFormat, Fnv1a,
};
