//! Constituent matrices of a Kronecker design.
//!
//! The paper builds its graphs from star constituents, but every property
//! formula only needs a handful of exact quantities per constituent: vertex
//! count, stored-entry count, degree distribution, raw triangle sum, and —
//! when the triangle-control construction is used — the degree of the single
//! self-loop vertex.  [`Constituent`] captures those quantities either
//! analytically (for [`StarGraph`]s) or by measuring an arbitrary small
//! adjacency matrix, so designs can freely mix stars with custom motifs.

use serde::{Deserialize, Serialize};

use kron_bignum::BigUint;
use kron_sparse::reduce::degree_distribution;
use kron_sparse::triangles::triangle_raw_sum;
use kron_sparse::{CooMatrix, CsrMatrix, PlusTimes};

use crate::degree::DegreeDistribution;
use crate::error::CoreError;
use crate::star::{SelfLoop, StarGraph};

/// One constituent matrix `A_k` of a Kronecker design, together with the
/// exact properties the design layer needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constituent {
    kind: ConstituentKind,
    vertices: u64,
    nnz: u64,
    degree_distribution: DegreeDistribution,
    triangle_raw_sum: u64,
    /// Degree (including the loop itself) of the unique self-loop vertex, if
    /// the constituent has exactly one self-loop.
    self_loop_degree: Option<u64>,
    /// Number of stored diagonal entries.
    self_loop_count: u64,
}

/// How a constituent was specified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConstituentKind {
    /// A star graph with the given number of points and self-loop placement.
    Star(StarGraph),
    /// An arbitrary small adjacency matrix supplied by the user.
    Custom(CooMatrix<u64>),
}

impl Constituent {
    /// Build a star constituent; every property comes from the closed forms
    /// in [`StarGraph`].
    pub fn star(points: u64, self_loop: SelfLoop) -> Result<Self, CoreError> {
        let star = StarGraph::new(points, self_loop)?;
        Ok(Constituent {
            vertices: star.vertices(),
            nnz: star.nnz(),
            degree_distribution: star.degree_distribution(),
            triangle_raw_sum: star.triangle_raw_sum(),
            self_loop_degree: star.self_loop_degree(),
            self_loop_count: match self_loop {
                SelfLoop::None => 0,
                _ => 1,
            },
            kind: ConstituentKind::Star(star),
        })
    }

    /// Build a constituent from an arbitrary adjacency matrix by measuring
    /// its properties.  The matrix must be square, non-empty, and symmetric
    /// (the paper's formulas are for undirected graphs).
    pub fn from_matrix(matrix: CooMatrix<u64>, index: usize) -> Result<Self, CoreError> {
        if !matrix.is_square() {
            return Err(CoreError::InvalidConstituent {
                index,
                message: format!(
                    "matrix is {}x{}, must be square",
                    matrix.nrows(),
                    matrix.ncols()
                ),
            });
        }
        if matrix.nnz() == 0 {
            return Err(CoreError::InvalidConstituent {
                index,
                message: "matrix has no stored entries".into(),
            });
        }
        let mut canonical = matrix.clone();
        canonical.sum_duplicates::<PlusTimes>();
        if !canonical.is_symmetric::<PlusTimes>() {
            return Err(CoreError::InvalidConstituent {
                index,
                message: "adjacency pattern must be symmetric (undirected graph)".into(),
            });
        }
        let csr = CsrMatrix::from_coo::<PlusTimes>(&canonical)?;
        let hist = degree_distribution(&canonical);
        let dist = DegreeDistribution::from_histogram(&hist);
        let raw = triangle_raw_sum(&csr)?;
        let loops: Vec<u64> = canonical
            .iter()
            .filter(|&(r, c, _)| r == c)
            .map(|(r, _, _)| r)
            .collect();
        let self_loop_degree = if loops.len() == 1 {
            let v = loops[0];
            Some(canonical.iter().filter(|&(r, _, _)| r == v).count() as u64)
        } else {
            None
        };
        Ok(Constituent {
            vertices: canonical.nrows(),
            nnz: canonical.nnz() as u64,
            degree_distribution: dist,
            triangle_raw_sum: raw,
            self_loop_degree,
            self_loop_count: loops.len() as u64,
            kind: ConstituentKind::Custom(canonical),
        })
    }

    /// How the constituent was specified.
    pub fn kind(&self) -> &ConstituentKind {
        &self.kind
    }

    /// The star parameters, if this constituent is a star.
    pub fn as_star(&self) -> Option<&StarGraph> {
        match &self.kind {
            ConstituentKind::Star(s) => Some(s),
            ConstituentKind::Custom(_) => None,
        }
    }

    /// Number of vertices `m_k`.
    pub fn vertices(&self) -> u64 {
        self.vertices
    }

    /// Number of stored adjacency entries `nnz(A_k)`.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// The exact degree distribution of the constituent.
    pub fn degree_distribution(&self) -> &DegreeDistribution {
        &self.degree_distribution
    }

    /// The raw triangle sum `1ᵀ((A_k·A_k) ⊗ A_k)1`.
    pub fn triangle_raw_sum(&self) -> u64 {
        self.triangle_raw_sum
    }

    /// Number of stored diagonal entries (self-loops).
    pub fn self_loop_count(&self) -> u64 {
        self.self_loop_count
    }

    /// Degree (including the loop) of the unique self-loop vertex, if the
    /// constituent has exactly one self-loop.
    pub fn self_loop_degree(&self) -> Option<u64> {
        self.self_loop_degree
    }

    /// Materialise the constituent's adjacency matrix.
    pub fn adjacency(&self) -> CooMatrix<u64> {
        match &self.kind {
            ConstituentKind::Star(s) => s.adjacency(),
            ConstituentKind::Custom(m) => m.clone(),
        }
    }

    /// Number of vertices as a [`BigUint`] (convenience for product formulas).
    pub fn vertices_big(&self) -> BigUint {
        BigUint::from(self.vertices)
    }

    /// Number of stored entries as a [`BigUint`].
    pub fn nnz_big(&self) -> BigUint {
        BigUint::from(self.nnz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_constituent_uses_closed_forms() {
        let c = Constituent::star(5, SelfLoop::Centre).unwrap();
        assert_eq!(c.vertices(), 6);
        assert_eq!(c.nnz(), 11);
        assert_eq!(c.triangle_raw_sum(), 16);
        assert_eq!(c.self_loop_degree(), Some(6));
        assert_eq!(c.self_loop_count(), 1);
        assert!(c.as_star().is_some());
    }

    #[test]
    fn star_closed_forms_match_measured_constituent() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            for points in [1u64, 3, 5, 9] {
                let star = Constituent::star(points, self_loop).unwrap();
                let measured =
                    Constituent::from_matrix(star.adjacency(), 0).expect("star adjacency is valid");
                assert_eq!(star.vertices(), measured.vertices());
                assert_eq!(star.nnz(), measured.nnz());
                assert_eq!(star.triangle_raw_sum(), measured.triangle_raw_sum());
                assert_eq!(star.self_loop_degree(), measured.self_loop_degree());
                assert_eq!(star.degree_distribution(), measured.degree_distribution());
            }
        }
    }

    #[test]
    fn custom_constituent_measures_triangle_motif() {
        // A triangle graph: 3 vertices, all pairwise connected.
        let tri = CooMatrix::from_edges(3, 3, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
            .unwrap();
        let c = Constituent::from_matrix(tri, 0).unwrap();
        assert_eq!(c.vertices(), 3);
        assert_eq!(c.nnz(), 6);
        assert_eq!(c.triangle_raw_sum(), 6);
        assert_eq!(c.self_loop_count(), 0);
        assert_eq!(c.self_loop_degree(), None);
        assert_eq!(
            c.degree_distribution().count(&BigUint::from(2u64)),
            BigUint::from(3u64)
        );
    }

    #[test]
    fn custom_constituent_rejects_bad_input() {
        let rect = CooMatrix::from_edges(2, 3, vec![(0, 1)]).unwrap();
        assert!(Constituent::from_matrix(rect, 2).is_err());
        let empty = CooMatrix::<u64>::new(3, 3);
        assert!(Constituent::from_matrix(empty, 0).is_err());
        let asym = CooMatrix::from_edges(3, 3, vec![(0, 1)]).unwrap();
        assert!(Constituent::from_matrix(asym, 1).is_err());
    }

    #[test]
    fn custom_with_multiple_loops_has_no_unique_loop_degree() {
        let m = CooMatrix::from_edges(2, 2, vec![(0, 0), (1, 1), (0, 1), (1, 0)]).unwrap();
        let c = Constituent::from_matrix(m, 0).unwrap();
        assert_eq!(c.self_loop_count(), 2);
        assert_eq!(c.self_loop_degree(), None);
    }
}
