//! The paper's Figure 4 workflow at two scales:
//!
//! 1. **Full paper scale (analytic).** The trillion-edge design
//!    B = m̂{3,4,5,9,16,25}+loops, C = m̂{81,256}+loops: exact vertex, edge,
//!    and triangle counts are computed on this machine in microseconds and
//!    printed next to the values the paper reports.
//! 2. **Machine scale (generated).** A scaled-down design with the same
//!    structure is generated in parallel, measured block by block, and shown
//!    to agree with its prediction *exactly* — the same validation the paper
//!    performs on 41,472 cores.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trillion_validation
//! ```

use extreme_graphs::bignum::grouped;
use extreme_graphs::core::validate::{compare_properties, measure_properties};
use extreme_graphs::gen::measure::BalanceReport;
use extreme_graphs::{KroneckerDesign, Pipeline, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The paper's exact trillion-edge numbers, reproduced analytically.
    let paper_design =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::Centre)?;

    println!("=== Figure 4 design at full paper scale (analytic only) ===");
    println!("{:<12} {:>28} {:>28}", "", "this implementation", "paper");
    println!(
        "{:<12} {:>28} {:>28}",
        "vertices",
        grouped(&paper_design.vertices().to_string()),
        "11,177,649,600"
    );
    println!(
        "{:<12} {:>28} {:>28}",
        "edges",
        grouped(&paper_design.edges().to_string()),
        "1,853,002,140,758"
    );
    println!(
        "{:<12} {:>28} {:>28}",
        "triangles",
        grouped(&paper_design.triangles()?.to_string()),
        "6,777,007,252,427"
    );
    let distribution = paper_design.degree_distribution();
    println!(
        "degree distribution: {} support points, max degree {}",
        distribution.support_size(),
        grouped(
            &distribution
                .max_degree()
                .ok_or("empty degree distribution")?
                .to_string()
        ),
    );
    println!("first predicted points (degree, count):");
    for (d, n) in distribution.iter().take(8) {
        println!(
            "  {:>16} {:>20}",
            grouped(&d.to_string()),
            grouped(&n.to_string())
        );
    }

    // --- 2. The same workflow, generated for real at machine scale through
    //        the pipeline.
    let scaled = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::Centre)?;
    let workers = 8;

    println!("\n=== same structure generated at machine scale ===");
    println!(
        "design: m̂ = [3,4,5,9,16] with centre loops -> {} vertices, {} edges",
        grouped(&scaled.vertices().to_string()),
        grouped(&scaled.edges().to_string()),
    );
    let run = Pipeline::for_design(&scaled)
        .workers(workers)
        .max_c_edges(50_000)
        .collect_coo()?;
    println!(
        "generated with {} workers in {:.3} s ({:.1} Medges/s)",
        workers,
        run.stats.seconds,
        run.stats.edges_per_second() / 1e6
    );
    let balance = BalanceReport::from_stats(&run.stats);
    println!(
        "per-worker edges: min {}, max {} (max/mean = {:.4})",
        balance.min_edges, balance.max_edges, balance.max_over_mean
    );

    // The run validated its streamed degree histogram already; the
    // materialised cross-check below adds the triangle count.
    assert!(
        run.validation.is_exact_match(),
        "streamed validation must be exact"
    );
    let measured = measure_properties(&run.assemble())?;
    let report = compare_properties(&scaled.properties(), &measured);
    println!("\npredicted vs measured (triangles included):\n{report}");
    assert!(
        report.is_exact_match(),
        "measured properties must equal the prediction exactly"
    );
    println!("\ntrillion_validation: measured degree distribution equals prediction exactly ✓");

    Ok(())
}
