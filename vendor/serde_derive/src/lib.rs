//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on most public types so that real serde
//! can be dropped in when a registry is reachable, but nothing in-tree ever
//! serializes a derived type (the two hand-written impls in `kron-bignum` are
//! string round-trips).  These derives therefore expand to nothing: the
//! attribute is accepted and the trait impl is simply not generated.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` (and `#[serde(...)]` field/container
/// attributes) without generating an impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` (and `#[serde(...)]` field/container
/// attributes) without generating an impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
