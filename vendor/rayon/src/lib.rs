//! Vendored subset of the `rayon` API backed by `std::thread::scope`.
//!
//! The build environment has no route to a crates registry, so this crate
//! implements the parallel-iterator surface the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks`, and the `map` / `flat_map_iter` / `zip` /
//! `reduce` / `sum` / `collect` / `try_for_each` adaptors — with real OS
//! threads.  Each adaptor is evaluated eagerly: the items are split into one
//! contiguous run per hardware thread, the runs are processed on scoped
//! threads, and results are rejoined in the original order, so the semantics
//! match rayon's order-preserving `collect`.
//!
//! This is not work-stealing; load balance comes from the caller handing over
//! evenly sized work items, which is exactly the situation in this workspace
//! (the paper's generator is built around perfect static balance).

use std::iter::Sum;

/// Number of worker threads used for parallel evaluation.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item on the thread pool, preserving order.
fn par_apply<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_len));
        runs.push(std::mem::replace(&mut items, tail));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = runs
            .into_iter()
            .map(|run| scope.spawn(move || run.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// An eagerly evaluated parallel iterator over an in-memory item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map every item through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_apply(self.items, f),
        }
    }

    /// Map every item to a sequential iterator and concatenate the results in
    /// order (rayon's `flat_map_iter`).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = par_apply(self.items, |item| f(item).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Pair items positionally with another parallel iterator.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Run `f` on every item, stopping at the first error.
    pub fn try_for_each<E, F>(self, f: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(T) -> Result<(), E> + Sync,
    {
        par_apply(self.items, f).into_iter().collect()
    }

    /// Fold all items into one value, seeding each fold with `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Collect the items, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter` over borrowed slices (also reachable from `Vec` through deref).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over item references.
    fn par_iter(&self) -> ParIter<&T>;

    /// Parallel iterator over contiguous chunks of at most `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// The rayon prelude: every trait needed to call the parallel methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let out: Vec<usize> = vec![1usize, 2, 3]
            .into_par_iter()
            .flat_map_iter(|n| 0..n)
            .collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn chunked_reduce_matches_sequential() {
        let data: Vec<u64> = (0..10_000).collect();
        let total = data
            .par_chunks(128)
            .map(|chunk| chunk.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn try_for_each_reports_errors() {
        let ok: Result<(), String> = vec![1, 2, 3].into_par_iter().try_for_each(|_| Ok(()));
        assert!(ok.is_ok());
        let err: Result<(), String> = vec![1, 2, 3].into_par_iter().try_for_each(|n| {
            if n == 2 {
                Err("two".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(err, Err("two".to_string()));
    }

    #[test]
    fn zip_and_sum() {
        let left = vec![1u64, 2, 3];
        let right = [10u64, 20, 30];
        let pairs: Vec<(u64, u64)> = left
            .par_iter()
            .zip(right.par_iter())
            .map(|(&a, &b)| (a, b))
            .collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
        let s: u64 = left.into_par_iter().sum();
        assert_eq!(s, 6);
    }
}
