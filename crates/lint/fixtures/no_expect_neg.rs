//@ path: crates/core/src/under_test.rs
pub struct Parser {
    pos: usize,
}

impl Parser {
    fn expect_byte(&mut self, _byte: u8) -> Result<(), String> {
        self.pos += 1;
        Ok(())
    }

    pub fn run(&mut self) -> Result<(), String> {
        // A method *named* expect_byte is not Option::expect.
        self.expect_byte(b'{')
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn expect_is_fine_in_tests() {
        Some(1u32).expect("present");
    }
}
