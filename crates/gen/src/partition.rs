//! Partitioning `B`'s triples among workers.
//!
//! The paper's scheme: every processor reads `B` and `C`, extracts the
//! triples of `B` in CSC (column-major) order, and keeps the contiguous
//! slice of `nnz(B)/N_p` triples that belongs to it.  Because the Kronecker
//! product maps each `B` triple to exactly `nnz(C)` edges, equal triple
//! counts give equal edge counts per processor — perfect static load balance
//! with no communication.

use serde::{Deserialize, Serialize};

use kron_sparse::{CooMatrix, PlusTimes};

/// A partition of `nnz(B)` triples into contiguous worker slices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Number of triples being divided.
    total: usize,
    /// Exclusive end offset of each worker's slice (cumulative).
    boundaries: Vec<usize>,
}

impl Partition {
    /// Divide `total` triples among `workers` slices whose sizes differ by at
    /// most one (the first `total mod workers` slices get the extra triple).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn even(total: usize, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        let base = total / workers;
        let extra = total % workers;
        let mut boundaries = Vec::with_capacity(workers);
        let mut cursor = 0usize;
        for w in 0..workers {
            cursor += base + usize::from(w < extra);
            boundaries.push(cursor);
        }
        Partition { total, boundaries }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.boundaries.len()
    }

    /// Total number of triples divided.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The half-open triple range `[start, end)` owned by worker `p`.
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        let start = if p == 0 { 0 } else { self.boundaries[p - 1] };
        start..self.boundaries[p]
    }

    /// Number of triples owned by worker `p`.
    pub fn len(&self, p: usize) -> usize {
        self.range(p).len()
    }

    /// Whether the partition covers no triples at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sizes of every slice.
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.workers()).map(|p| self.len(p)).collect()
    }

    /// Maximum difference between any two slice sizes (0 or 1 for
    /// [`Partition::even`]).
    pub fn imbalance(&self) -> usize {
        let sizes = self.sizes();
        match (sizes.iter().max(), sizes.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }
}

/// `B`'s triples in the deterministic CSC (column-major, then row) order the
/// partition indexes into.  Row and column indices stay global.
pub fn csc_ordered_triples(b: &CooMatrix<u64>) -> Vec<(u64, u64, u64)> {
    let mut canonical = b.clone();
    canonical.sum_duplicates::<PlusTimes>();
    let mut triples: Vec<(u64, u64, u64)> = canonical.iter().collect();
    triples.sort_unstable_by_key(|&(r, c, _)| (c, r));
    triples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_exact_division() {
        let p = Partition::even(12, 4);
        assert_eq!(p.workers(), 4);
        assert_eq!(p.sizes(), vec![3, 3, 3, 3]);
        assert_eq!(p.imbalance(), 0);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(3), 9..12);
    }

    #[test]
    fn even_partition_with_remainder() {
        let p = Partition::even(14, 4);
        assert_eq!(p.sizes(), vec![4, 4, 3, 3]);
        assert_eq!(p.imbalance(), 1);
        assert_eq!(p.sizes().iter().sum::<usize>(), 14);
    }

    #[test]
    fn more_workers_than_triples() {
        let p = Partition::even(3, 8);
        assert_eq!(p.sizes(), vec![1, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(p.sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn empty_and_single() {
        let p = Partition::even(0, 3);
        assert!(p.is_empty());
        assert_eq!(p.sizes(), vec![0, 0, 0]);
        let p = Partition::even(7, 1);
        assert_eq!(p.sizes(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Partition::even(5, 0);
    }

    #[test]
    fn csc_order_is_column_major() {
        let b = CooMatrix::from_edges(3, 3, vec![(2, 0), (0, 1), (1, 0), (0, 2), (2, 1)]).unwrap();
        let triples = csc_ordered_triples(&b);
        let cols: Vec<u64> = triples.iter().map(|t| t.1).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
        // Within column 0, rows ascend.
        assert_eq!(triples[0].0, 1);
        assert_eq!(triples[1].0, 2);
    }

    #[test]
    fn csc_order_combines_duplicates() {
        let b = kron_sparse::CooMatrix::from_entries(
            2,
            2,
            vec![(0u64, 1u64, 1u64), (0, 1, 1), (1, 0, 1)],
        )
        .unwrap();
        let triples = csc_ordered_triples(&b);
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[1], (0, 1, 2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn partition_covers_everything_once(total in 0usize..5000, workers in 1usize..64) {
            let p = Partition::even(total, workers);
            prop_assert_eq!(p.sizes().iter().sum::<usize>(), total);
            prop_assert!(p.imbalance() <= 1);
            let mut covered = 0usize;
            for w in 0..p.workers() {
                let range = p.range(w);
                prop_assert_eq!(range.start, covered);
                covered = range.end;
            }
            prop_assert_eq!(covered, total);
        }
    }
}
