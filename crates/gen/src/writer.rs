//! Writing distributed graphs to disk.
//!
//! The natural on-disk form of a distributed Kronecker graph is one triple
//! file per worker — exactly what a distributed file system would hold after
//! the paper's generation run.  Blocks are written in parallel (each worker
//! owns its file, so there is still no coordination).

use std::path::{Path, PathBuf};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use kron_core::CoreError;
use kron_sparse::io::{read_tsv_file, write_tsv_file};
use kron_sparse::CooMatrix;

use crate::generator::DistributedGraph;

/// The files produced by [`write_blocks_tsv`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockFileSet {
    /// Directory containing the block files.
    pub directory: PathBuf,
    /// One file per worker, in worker order.
    pub files: Vec<PathBuf>,
    /// Vertex count of the graph the files describe.
    pub vertices: u64,
}

impl BlockFileSet {
    /// Read every block file back and assemble the full adjacency matrix.
    pub fn read_assembled(&self) -> Result<CooMatrix<u64>, CoreError> {
        let mut all = CooMatrix::new(self.vertices, self.vertices);
        for file in &self.files {
            let block = read_tsv_file(self.vertices, self.vertices, file)?;
            all.append(&block)?;
        }
        Ok(all)
    }
}

/// Write each block of a distributed graph to `<directory>/block_<p>.tsv`
/// (0-based triples, one file per worker, written in parallel).
pub fn write_blocks_tsv(
    graph: &DistributedGraph,
    directory: &Path,
) -> Result<BlockFileSet, CoreError> {
    std::fs::create_dir_all(directory)
        .map_err(|e| CoreError::Sparse(kron_sparse::SparseError::Io(e.to_string())))?;
    let files: Vec<PathBuf> = graph
        .blocks
        .iter()
        .map(|b| directory.join(format!("block_{:05}.tsv", b.worker)))
        .collect();
    graph
        .blocks
        .par_iter()
        .zip(files.par_iter())
        .try_for_each(|(block, path)| write_tsv_file(&block.edges, path))
        .map_err(CoreError::Sparse)?;
    Ok(BlockFileSet { directory: directory.to_path_buf(), files, vertices: graph.vertices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, ParallelGenerator};
    use kron_core::{KroneckerDesign, SelfLoop};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kron_gen_writer_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn blocks_round_trip_through_disk() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let graph = ParallelGenerator::new(GeneratorConfig {
            workers: 3,
            max_c_edges: 1_000,
            max_total_edges: 100_000,
        })
        .generate(&design)
        .unwrap();

        let dir = temp_dir("round_trip");
        let files = write_blocks_tsv(&graph, &dir).unwrap();
        assert_eq!(files.files.len(), 3);
        for f in &files.files {
            assert!(f.exists(), "missing block file {f:?}");
        }

        let mut from_disk = files.read_assembled().unwrap();
        let mut in_memory = graph.assemble();
        from_disk.sort();
        in_memory.sort();
        assert_eq!(from_disk, in_memory);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_names_are_worker_ordered() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let graph = ParallelGenerator::new(GeneratorConfig {
            workers: 2,
            max_c_edges: 100,
            max_total_edges: 10_000,
        })
        .generate(&design)
        .unwrap();
        let dir = temp_dir("names");
        let files = write_blocks_tsv(&graph, &dir).unwrap();
        assert!(files.files[0].to_string_lossy().contains("block_00000"));
        assert!(files.files[1].to_string_lossy().contains("block_00001"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
