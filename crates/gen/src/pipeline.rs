//! The unified design → generate → validate pipeline.
//!
//! The paper's workflow is one straight line — design a Kronecker graph with
//! exact properties, generate it communication-free, validate that measured
//! equals predicted — and [`Pipeline`] is that line as one API.  A pipeline
//! is built fluently from a [`KroneckerDesign`], owns every generation knob
//! (workers, `B ⊗ C` split, chunk size, histogram budget, self-loop policy),
//! and terminates in one of five sinks:
//!
//! ```no_run
//! use kron_core::{KroneckerDesign, SelfLoop};
//! use kron_gen::Pipeline;
//!
//! let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre)?;
//! let report = Pipeline::for_design(&design)
//!     .workers(8)
//!     .write_binary(std::path::Path::new("/data/run1"))?;
//! assert!(report.validation.is_exact_match());
//! println!("{}", report.manifest.to_json());
//! # Ok::<(), kron_core::CoreError>(())
//! ```
//!
//! * [`Pipeline::count`] — generate and validate, store nothing.
//! * [`Pipeline::collect_coo`] — per-worker in-memory COO blocks.
//! * [`Pipeline::write_tsv`] / [`Pipeline::write_binary`] — one shard file
//!   per worker, plus a `manifest.json` reproducibility record.
//! * [`Pipeline::into_sinks`] — any custom [`EdgeSink`] factory.
//!
//! Every terminal returns a [`RunReport`]: the sink outputs, the
//! [`GenerationStats`], the streamed measured-equals-predicted
//! [`ValidationReport`], and a serialisable [`RunManifest`].  Generation is
//! always the communication-free streaming engine of the out-of-core shard
//! driver — each worker expands its partition slice of `B_p ⊗ C` through a
//! reusable chunk into its sink while feeding an adaptive streaming degree
//! histogram — so every backend, in-memory or on-disk, gets bounded-memory
//! generation *and* validation.  The legacy
//! [`ParallelGenerator`](crate::generator::ParallelGenerator) and
//! [`ShardDriver::run_*`](crate::driver::ShardDriver) entry points are thin
//! wrappers over this module.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;

use kron_core::validate::{
    measure_from_histogram, validate_streamed, FieldCheck, ValidationReport,
};
use kron_core::{CoreError, GraphProperties, KroneckerDesign, SelfLoop};
use kron_sparse::reduce::SharedDegreeAccumulator;
use kron_sparse::{CooMatrix, DegreeAccumulator, SparseError};

use crate::chunk::EdgeChunk;
use crate::driver::DriverConfig;
use crate::generator::self_loop_vertex_index;
use crate::manifest::{RunManifest, MANIFEST_FILE_NAME};
use crate::partition::{csc_ordered_triples, Partition};
use crate::sink::{BinaryShardSink, CooSink, CountingSink, EdgeSink, TsvShardSink};
use crate::split::{choose_split_with_fallback, SplitPlan};
use crate::stats::GenerationStats;
use crate::stream::try_stream_block_edges_into;
use crate::writer::{prepare_directory, BlockFileSet, BlockFormat};

/// What a run does with the single removable self-loop of a triangle-control
/// design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Remove it in-stream, so the sinks receive exactly the designed final
    /// graph (the default, and the paper's construction).
    #[default]
    RemoveDesigned,
    /// Keep every self-loop: the sinks receive the raw `B ⊗ C` product.
    /// Validation then checks the raw counts (vertices, raw edges, product
    /// self-loops) instead of the final-graph property sheet.
    KeepRaw,
}

impl SelfLoopPolicy {
    fn label(self) -> &'static str {
        match self {
            SelfLoopPolicy::RemoveDesigned => "remove_designed",
            SelfLoopPolicy::KeepRaw => "keep_raw",
        }
    }
}

/// The design's vertex count as a `u64`, or [`CoreError::TooLargeToRealise`]
/// when the graph cannot be indexed on this machine at all.
pub(crate) fn realisable_vertices(design: &KroneckerDesign) -> Result<u64, CoreError> {
    design
        .vertices()
        .to_u64()
        .ok_or_else(|| CoreError::TooLargeToRealise {
            vertices: design.vertices().to_string(),
            edges: design.nnz_with_loops().to_string(),
        })
}

/// A fluent builder for one design → generate → validate run.
///
/// Defaults mirror [`DriverConfig::default`]; every knob has a setter.  The
/// split is chosen automatically (largest `C` under the budget that still
/// gives every worker a `B` triple, falling back to a single-worker split
/// with a recorded warning) unless pinned with
/// [`Pipeline::split_index`].
#[derive(Debug, Clone)]
pub struct Pipeline<'d> {
    design: &'d KroneckerDesign,
    workers: usize,
    split: Option<usize>,
    max_c_edges: u64,
    max_b_edges: u64,
    chunk_capacity: usize,
    max_histogram_bytes: u64,
    self_loop_policy: SelfLoopPolicy,
}

impl<'d> Pipeline<'d> {
    /// Start a pipeline over `design` with default configuration.
    pub fn for_design(design: &'d KroneckerDesign) -> Self {
        Pipeline::from_config(design, &DriverConfig::default())
    }

    /// Start a pipeline with every knob taken from a [`DriverConfig`].
    pub fn from_config(design: &'d KroneckerDesign, config: &DriverConfig) -> Self {
        Pipeline {
            design,
            workers: config.workers,
            split: None,
            max_c_edges: config.max_c_edges,
            max_b_edges: config.max_b_edges,
            chunk_capacity: config.chunk_capacity,
            max_histogram_bytes: config.max_histogram_bytes,
            self_loop_policy: SelfLoopPolicy::default(),
        }
    }

    /// Set the number of workers (rayon tasks; the paper's "processors").
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Pin the `B ⊗ C` split index (`B` = first `split_index` constituents)
    /// instead of choosing it automatically.
    pub fn split_index(mut self, split_index: usize) -> Self {
        self.split = Some(split_index);
        self
    }

    /// Set the memory budget for the replicated `C` factor, in stored
    /// entries (also the budget the automatic split choice honours).
    pub fn max_c_edges(mut self, max_c_edges: u64) -> Self {
        self.max_c_edges = max_c_edges;
        self
    }

    /// Set the memory budget for the partitioned `B` factor, in stored
    /// entries.
    pub fn max_b_edges(mut self, max_b_edges: u64) -> Self {
        self.max_b_edges = max_b_edges;
        self
    }

    /// Set the capacity of each worker's reusable edge chunk.
    pub fn chunk_capacity(mut self, chunk_capacity: usize) -> Self {
        self.chunk_capacity = chunk_capacity;
        self
    }

    /// Set the memory budget for the streaming degree histogram, in bytes
    /// (see [`DriverConfig::max_histogram_bytes`]).
    pub fn max_histogram_bytes(mut self, max_histogram_bytes: u64) -> Self {
        self.max_histogram_bytes = max_histogram_bytes;
        self
    }

    /// Set the self-loop policy.
    pub fn self_loop_policy(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loop_policy = policy;
        self
    }

    /// Shorthand for [`SelfLoopPolicy::KeepRaw`]: stream the raw `B ⊗ C`
    /// product, self-loops included.
    pub fn raw_product(self) -> Self {
        self.self_loop_policy(SelfLoopPolicy::KeepRaw)
    }

    /// Generate and validate with a [`CountingSink`] per worker: no output
    /// at all — the cheapest way to reproduce measured-equals-predicted at
    /// scales far beyond memory for edges.
    pub fn count(self) -> Result<RunReport<u64>, CoreError> {
        self.run(SinkSpec::plain("counting"), |_| Ok(CountingSink::new()))
    }

    /// Generate into one in-memory [`CooSink`] block per worker (tests and
    /// small graphs).
    pub fn collect_coo(self) -> Result<RunReport<CooMatrix<u64>>, CoreError> {
        let vertices = realisable_vertices(self.design)?;
        self.run(SinkSpec::plain("coo"), |_| Ok(CooSink::new(vertices)))
    }

    /// Generate into one TSV shard per worker under `directory`, and write
    /// the run's `manifest.json` next to the shards.
    pub fn write_tsv(self, directory: &Path) -> Result<RunReport<PathBuf>, CoreError> {
        let files = prepare_directory(directory, self.workers, "tsv")?;
        let spec = SinkSpec::files("tsv", directory, &files, BlockFormat::Tsv);
        self.run(spec, |worker| TsvShardSink::create(&files[worker]))
    }

    /// Generate into one interleaved binary shard per worker under
    /// `directory`, and write the run's `manifest.json` next to the shards.
    pub fn write_binary(self, directory: &Path) -> Result<RunReport<PathBuf>, CoreError> {
        let vertices = realisable_vertices(self.design)?;
        let files = prepare_directory(directory, self.workers, "kbk")?;
        let spec = SinkSpec::files("binary", directory, &files, BlockFormat::Binary);
        self.run(spec, |worker| {
            BinaryShardSink::create(&files[worker], vertices, vertices)
        })
    }

    /// Generate into custom sinks: `make_sink(worker)` creates the sink each
    /// worker streams into.  This is the extension point every new backend
    /// (sockets, compressed files, columnar stores) plugs into.
    pub fn into_sinks<S, F>(self, make_sink: F) -> Result<RunReport<S::Output>, CoreError>
    where
        S: EdgeSink,
        S::Output: Send,
        F: Fn(usize) -> Result<S, SparseError> + Sync,
    {
        self.run(SinkSpec::plain("custom"), make_sink)
    }

    /// Resolve the split to run with: the pinned index, or the automatic
    /// choice with its single-worker fallback (which records a warning).
    fn resolve_split(&self) -> Result<(usize, Vec<String>), CoreError> {
        if let Some(index) = self.split {
            return Ok((index, Vec::new()));
        }
        let (plan, warning) =
            choose_split_with_fallback(self.design, self.max_c_edges, self.workers)?;
        Ok((plan.split_index, warning.into_iter().collect()))
    }

    /// The engine: expand `B_p ⊗ C` on every worker, stream the chunks into
    /// the per-worker sinks, accumulate the streaming degree histogram, and
    /// assemble the report (validation + manifest included).
    fn run<S, F>(self, spec: SinkSpec, make_sink: F) -> Result<RunReport<S::Output>, CoreError>
    where
        S: EdgeSink,
        S::Output: Send,
        F: Fn(usize) -> Result<S, SparseError> + Sync,
    {
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "the pipeline needs at least one worker".into(),
            });
        }
        let design = self.design;
        let vertices = realisable_vertices(design)?;
        let (split_index, warnings) = self.resolve_split()?;

        let (b_design, c_design) = design.split(split_index)?;
        // Both factors keep their self-loops: the raw product is exactly the
        // designed product, and the one surviving loop is filtered below
        // (unless the policy keeps the raw product).
        let b = b_design.realize_raw(self.max_b_edges)?;
        let c = c_design.realize_raw(self.max_c_edges)?;
        let triples = csc_ordered_triples(&b);
        let partition = Partition::even(triples.len(), self.workers);
        let split_plan = SplitPlan {
            split_index,
            b_nnz: b_design.nnz_with_loops(),
            c_nnz: c_design.nnz_with_loops(),
            c_vertices: c_design.vertices(),
        };

        // The product self-loop lands in the worker whose B slice holds the
        // diagonal triple (v_B, v_B); that worker filters the single global
        // edge (v, v) out of its stream.
        let remove_loop = self.self_loop_policy == SelfLoopPolicy::RemoveDesigned
            && design.has_removable_self_loop();
        let loop_filter: Option<(usize, u64)> = if remove_loop {
            let b_loop = self_loop_vertex_index(&b_design);
            let position = triples
                .iter()
                .position(|&(r, c, _)| r == b_loop && c == b_loop)
                .expect("a triangle-control B factor has exactly one diagonal triple");
            let owner = (0..self.workers)
                .find(|&w| partition.range(w).contains(&position))
                .expect("every triple index belongs to one worker");
            Some((owner, self_loop_vertex_index(design)))
        } else {
            None
        };

        let started = Instant::now();
        // Local accumulators are folded and dropped as each worker finishes,
        // so at most one per pool thread is live at once (plus the merged
        // one) — size the budget check on that peak, not the worker count.
        let concurrent = self.workers.min(rayon::current_num_threads()) + 1;
        let local_histogram_bytes = (concurrent as u128) * (vertices as u128) * 8;
        let shared = if local_histogram_bytes > u128::from(self.max_histogram_bytes) {
            Some(SharedDegreeAccumulator::rows_only(vertices, vertices))
        } else {
            None
        };
        let merged_local: Mutex<Option<DegreeAccumulator>> = Mutex::new(None);
        let worker_results: Vec<Result<WorkerResult<S::Output>, CoreError>> = (0..self.workers)
            .into_par_iter()
            .map(|worker| {
                let slice = &triples[partition.range(worker)];
                let mut sink = make_sink(worker).map_err(CoreError::Sparse)?;
                let mut accumulator = match shared.as_ref() {
                    Some(shared) => WorkerHistogram::Shared(shared),
                    None => {
                        WorkerHistogram::Local(DegreeAccumulator::rows_only(vertices, vertices))
                    }
                };
                let mut chunk = EdgeChunk::new(self.chunk_capacity);
                let filter =
                    loop_filter.and_then(|(owner, vertex)| (owner == worker).then_some(vertex));
                let mut removed = false;
                let produced = try_stream_block_edges_into(slice, &c, &mut chunk, |edges| {
                    if let Some(vertex) = filter {
                        if !removed {
                            if let Some(at) =
                                edges.iter().position(|&(r, c)| r == vertex && c == vertex)
                            {
                                removed = true;
                                accumulator.record(&edges[..at]);
                                sink.consume(&edges[..at])?;
                                accumulator.record(&edges[at + 1..]);
                                return sink.consume(&edges[at + 1..]);
                            }
                        }
                    }
                    accumulator.record(edges);
                    sink.consume(edges)
                })
                .map_err(CoreError::Sparse)?;
                if filter.is_some() {
                    debug_assert!(removed, "the owning worker must see the product loop");
                }
                let output = sink.finish().map_err(CoreError::Sparse)?;
                // A local histogram is folded into the run-wide one the
                // moment its worker finishes and is dropped here, so the
                // peak is bounded by the workers running concurrently.
                if let WorkerHistogram::Local(local) = accumulator {
                    let mut guard = merged_local.lock().expect("histogram mutex poisoned");
                    match guard.as_mut() {
                        Some(acc) => acc.merge(&local),
                        None => *guard = Some(local),
                    }
                }
                Ok(WorkerResult {
                    output,
                    delivered: produced - u64::from(removed),
                })
            })
            .collect();
        let elapsed = started.elapsed();

        let mut outputs = Vec::with_capacity(self.workers);
        let mut delivered = Vec::with_capacity(self.workers);
        for result in worker_results {
            let result = result?;
            outputs.push(result.output);
            delivered.push(result.delivered);
        }
        let (histogram, self_loops, recorded) = match shared {
            Some(shared) => (
                shared.row_histogram(),
                shared.self_loop_count(),
                shared.edge_count(),
            ),
            None => {
                let merged = merged_local
                    .into_inner()
                    .expect("histogram mutex poisoned")
                    .expect("at least one worker ran");
                (
                    merged.row_histogram(),
                    merged.self_loop_count(),
                    merged.edge_count(),
                )
            }
        };
        let measured = measure_from_histogram(vertices, &histogram, self_loops);
        let mut stats = GenerationStats::new(delivered, elapsed);
        for warning in warnings {
            stats.warn(warning);
        }
        debug_assert_eq!(stats.total_edges, recorded);

        let predicted = design.properties();
        let validation = match self.self_loop_policy {
            SelfLoopPolicy::RemoveDesigned => validate_streamed(&predicted, &measured),
            SelfLoopPolicy::KeepRaw => validate_raw(design, &measured),
        };

        // The manifest records the edge count the validation above actually
        // compared against: the final graph's, or the raw product's for a
        // keep-raw run.
        let predicted_edges = match self.self_loop_policy {
            SelfLoopPolicy::RemoveDesigned => design.edges(),
            SelfLoopPolicy::KeepRaw => design.nnz_with_loops(),
        };
        let manifest = RunManifest {
            star_points: design.star_points().unwrap_or_default(),
            self_loop: format!("{:?}", design_self_loop(design)),
            vertices: design.vertices().to_string(),
            predicted_edges: predicted_edges.to_string(),
            workers: self.workers,
            split_index,
            max_c_edges: self.max_c_edges,
            max_b_edges: self.max_b_edges,
            chunk_capacity: self.chunk_capacity,
            max_histogram_bytes: self.max_histogram_bytes,
            self_loop_policy: self.self_loop_policy.label().to_string(),
            sink: spec.label.to_string(),
            directory: spec.directory.as_ref().map(|d| d.display().to_string()),
            outputs: spec
                .outputs
                .iter()
                .map(|p| p.display().to_string())
                .collect(),
            edges_per_worker: stats.edges_per_worker.clone(),
            total_edges: stats.total_edges,
            seconds: stats.seconds,
            exact_match: validation.is_exact_match(),
            warnings: stats.warnings.clone(),
        };
        let files = spec.directory.as_ref().map(|directory| {
            manifest
                .write_to(&directory.join(MANIFEST_FILE_NAME))
                .map(|()| BlockFileSet {
                    directory: directory.clone(),
                    files: spec.outputs.clone(),
                    vertices,
                    format: spec.format.expect("file sinks declare a format"),
                })
        });
        let files = match files {
            Some(result) => Some(result.map_err(CoreError::Sparse)?),
            None => None,
        };

        Ok(RunReport {
            outputs,
            vertices,
            split: split_plan,
            predicted,
            measured,
            stats,
            validation,
            manifest,
            files,
        })
    }
}

/// The self-loop placement of a pure star design (the manifest's design
/// spec).  Mixed or non-star designs report the first constituent's
/// placement — the manifest's `star_points` being empty flags those.
fn design_self_loop(design: &KroneckerDesign) -> SelfLoop {
    design
        .constituents()
        .first()
        .and_then(|c| c.as_star())
        .map(|s| s.self_loop())
        .unwrap_or(SelfLoop::None)
}

/// Validate a raw-product run: the streamable fields whose raw values the
/// design predicts exactly — vertices, raw edge count, and product
/// self-loop count.  The degree distribution is not checked (the analytic
/// distribution describes the final graph, not the raw product).
fn validate_raw(design: &KroneckerDesign, measured: &GraphProperties) -> ValidationReport {
    let mut checks = Vec::new();
    let mut push = |field: &str, p: String, m: String| {
        checks.push(FieldCheck {
            field: field.to_string(),
            matches: p == m,
            predicted: p,
            measured: m,
        });
    };
    push(
        "vertices",
        design.vertices().to_string(),
        measured.vertices.to_string(),
    );
    push(
        "raw_edges",
        design.nnz_with_loops().to_string(),
        measured.edges.to_string(),
    );
    push(
        "raw_self_loops",
        design.product_self_loops().to_string(),
        measured.self_loops.to_string(),
    );
    ValidationReport {
        checks,
        no_empty_vertices: None,
        no_duplicate_edges: None,
    }
}

/// Everything one worker hands back when its stream ends.
struct WorkerResult<O> {
    output: O,
    delivered: u64,
}

/// One worker's view of the run's degree histogram: a private local vector
/// (fast, `O(vertices)` per concurrent worker) or the run-wide shared
/// atomic vector (`O(vertices)` total) — see
/// [`DriverConfig::max_histogram_bytes`].
enum WorkerHistogram<'a> {
    Local(DegreeAccumulator),
    Shared(&'a SharedDegreeAccumulator),
}

impl WorkerHistogram<'_> {
    fn record(&mut self, edges: &[(u64, u64)]) {
        match self {
            WorkerHistogram::Local(local) => local.record(edges),
            WorkerHistogram::Shared(shared) => shared.record(edges),
        }
    }
}

/// How a terminal labels itself in the manifest and, for file terminals,
/// where its outputs live.
struct SinkSpec {
    label: &'static str,
    directory: Option<PathBuf>,
    outputs: Vec<PathBuf>,
    format: Option<BlockFormat>,
}

impl SinkSpec {
    fn plain(label: &'static str) -> Self {
        SinkSpec {
            label,
            directory: None,
            outputs: Vec::new(),
            format: None,
        }
    }

    fn files(
        label: &'static str,
        directory: &Path,
        files: &[PathBuf],
        format: BlockFormat,
    ) -> Self {
        SinkSpec {
            label,
            directory: Some(directory.to_path_buf()),
            outputs: files.to_vec(),
            format: Some(format),
        }
    }
}

/// The result of one pipeline run: per-worker sink outputs plus everything
/// the paper's validation loop needs.
#[derive(Debug, Clone)]
#[must_use = "a run report carries the validation verdict and the sink outputs"]
pub struct RunReport<O> {
    /// Per-worker sink outputs, in worker order.
    pub outputs: Vec<O>,
    /// Number of rows/columns of the generated graph.
    pub vertices: u64,
    /// The split plan the run executed.
    pub split: SplitPlan,
    /// Exact predicted properties of the design.
    pub predicted: GraphProperties,
    /// Properties measured from the merged streaming degree histograms
    /// (triangles are never measured in streaming mode).
    pub measured: GraphProperties,
    /// Timing and balance statistics.
    pub stats: GenerationStats,
    /// The streamed measured-equals-predicted comparison (the paper's
    /// Figure 4), computed field by field as part of the run.
    pub validation: ValidationReport,
    /// The run's reproducibility record; file terminals also write it as
    /// `manifest.json` next to the shards.
    pub manifest: RunManifest,
    /// The shard files of a file-writing terminal, if any.
    pub files: Option<BlockFileSet>,
}

impl<O> RunReport<O> {
    /// Total number of edges delivered to the sinks.
    pub fn edge_count(&self) -> u64 {
        self.stats.total_edges
    }

    /// Whether the streamed validation matched the prediction exactly.
    pub fn is_valid(&self) -> bool {
        self.validation.is_exact_match()
    }
}

impl RunReport<CooMatrix<u64>> {
    /// Assemble the per-worker COO blocks into the full adjacency matrix
    /// (tests and small graphs only).
    pub fn assemble(&self) -> CooMatrix<u64> {
        let mut all = CooMatrix::new(self.vertices, self.vertices);
        for block in &self.outputs {
            all.append(block)
                .expect("blocks share the full graph dimensions");
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MANIFEST_FILE_NAME;
    use crate::sink::{DegreeOnlySink, FilterMapSink, TeeSink};
    use kron_bignum::BigUint;

    fn pipeline(design: &KroneckerDesign, workers: usize) -> Pipeline<'_> {
        Pipeline::for_design(design)
            .workers(workers)
            .max_c_edges(100_000)
            .chunk_capacity(512)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kron_gen_pipeline_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn count_validates_every_self_loop_variant() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
            let report = pipeline(&design, 4).split_index(2).count().unwrap();
            assert!(
                report.is_valid(),
                "pipeline validation failed for {self_loop:?}: {:?}",
                report.validation.failures()
            );
            assert_eq!(BigUint::from(report.edge_count()), design.edges());
            assert_eq!(report.manifest.sink, "counting");
            assert_eq!(report.manifest.total_edges, report.edge_count());
            assert!(report.files.is_none());
        }
    }

    #[test]
    fn automatic_split_falls_back_with_a_warning() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let report = pipeline(&design, 1_000).count().unwrap();
        assert_eq!(BigUint::from(report.edge_count()), design.edges());
        assert_eq!(report.stats.warnings.len(), 1, "fallback must warn");
        assert!(report.stats.warnings[0].contains("balance guarantee"));
        assert_eq!(report.manifest.warnings, report.stats.warnings);

        let healthy = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap();
        let report = pipeline(&healthy, 4).count().unwrap();
        assert!(report.stats.warnings.is_empty());
    }

    #[test]
    fn write_binary_emits_a_manifest_that_matches_the_run() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let dir = temp_dir("manifest_binary");
        let report = pipeline(&design, 3)
            .split_index(1)
            .write_binary(&dir)
            .unwrap();
        assert!(report.is_valid());

        let files = report.files.as_ref().expect("binary run produces files");
        assert_eq!(files.files.len(), 3);
        assert_eq!(files.format, BlockFormat::Binary);
        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);

        let on_disk = RunManifest::read_from(&dir.join(MANIFEST_FILE_NAME)).unwrap();
        assert_eq!(on_disk, report.manifest);
        assert_eq!(on_disk.sink, "binary");
        assert_eq!(on_disk.star_points, vec![3, 4, 5]);
        assert_eq!(on_disk.self_loop, "Centre");
        assert_eq!(on_disk.workers, 3);
        assert_eq!(on_disk.split_index, 1);
        assert_eq!(
            on_disk.edges_per_worker.iter().sum::<u64>(),
            report.edge_count()
        );
        assert_eq!(on_disk.outputs.len(), 3);
        assert!(on_disk.exact_match);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_tsv_round_trips_and_emits_a_manifest() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Leaf).unwrap();
        let dir = temp_dir("manifest_tsv");
        let report = pipeline(&design, 2).split_index(2).write_tsv(&dir).unwrap();
        assert!(report.is_valid());
        let files = report.files.as_ref().expect("tsv run produces files");
        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);
        assert!(dir.join(MANIFEST_FILE_NAME).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_product_keeps_loops_and_validates_raw_counts() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let report = pipeline(&design, 3)
            .split_index(1)
            .raw_product()
            .collect_coo()
            .unwrap();
        assert!(
            report.is_valid(),
            "raw validation failed: {:?}",
            report.validation.failures()
        );
        assert_eq!(
            BigUint::from(report.edge_count()),
            design.nnz_with_loops(),
            "raw product keeps every self-loop"
        );
        assert_eq!(report.measured.self_loops, design.product_self_loops());
        assert_eq!(report.manifest.self_loop_policy, "keep_raw");
        // The manifest's predicted count is the one the run validated
        // against — the raw product's, so predicted == delivered.
        assert_eq!(
            report.manifest.predicted_edges,
            design.nnz_with_loops().to_string()
        );
        assert_eq!(
            report.manifest.predicted_edges,
            report.manifest.total_edges.to_string()
        );

        let mut raw = report.assemble();
        let mut expected = design.realize_raw(1_000_000).unwrap();
        raw.sort();
        expected.sort();
        assert_eq!(raw, expected);
    }

    #[test]
    fn custom_sink_combinators_run_through_the_pipeline() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let vertices = realisable_vertices(&design).unwrap();
        // Tee a degree-only validator with a filtered counter that keeps
        // only upper-triangle edges.
        let report = pipeline(&design, 2)
            .split_index(1)
            .into_sinks(|_| {
                Ok(TeeSink::new(
                    DegreeOnlySink::new(vertices),
                    FilterMapSink::new(CountingSink::new(), |row, col| {
                        (row < col).then_some((row, col))
                    }),
                ))
            })
            .unwrap();
        assert!(report.is_valid());
        assert_eq!(report.manifest.sink, "custom");
        let mut merged: Option<DegreeAccumulator> = None;
        let mut upper = 0;
        for (degrees, count) in &report.outputs {
            upper += count;
            match merged.as_mut() {
                Some(m) => m.merge(degrees),
                None => merged = Some(degrees.clone()),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.edge_count(), report.edge_count());
        // The designed graph is loop-free and symmetric: upper-triangle
        // edges are exactly half.
        assert_eq!(upper * 2, report.edge_count());
        let streamed = measure_from_histogram(
            report.vertices,
            &merged.row_histogram(),
            merged.self_loop_count(),
        );
        assert_eq!(
            streamed.degree_distribution,
            report.measured.degree_distribution
        );
    }

    #[test]
    fn zero_workers_rejected_with_typed_error() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(matches!(
            pipeline(&design, 0).count(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn chunk_capacity_does_not_change_the_graph() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        for chunk_capacity in [1usize, 7, 4096] {
            let report = pipeline(&design, 3)
                .split_index(1)
                .chunk_capacity(chunk_capacity)
                .count()
                .unwrap();
            assert_eq!(BigUint::from(report.edge_count()), design.edges());
            assert!(report.is_valid());
            assert_eq!(report.measured.self_loops, BigUint::zero());
        }
    }

    #[test]
    fn shared_and_local_histogram_modes_measure_identically() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let local = pipeline(&design, 4).split_index(2).count().unwrap();
        let shared = pipeline(&design, 4)
            .split_index(2)
            .max_histogram_bytes(0)
            .count()
            .unwrap();
        assert_eq!(local.measured, shared.measured);
        assert_eq!(local.edge_count(), shared.edge_count());
        assert!(shared.is_valid());
    }
}
