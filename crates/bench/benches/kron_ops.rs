//! Microbenchmarks of the sparse Kronecker kernels: sequential COO product,
//! rayon-parallel product, and the streaming edge iterator (the ablation
//! called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kron_core::{SelfLoop, StarGraph};
use kron_sparse::parallel::par_kron_coo;
use kron_sparse::{kron_coo, CooMatrix, KronEdgeIter, PlusTimes};

fn star(points: u64) -> CooMatrix<u64> {
    StarGraph::new(points, SelfLoop::Centre)
        .expect("valid star")
        .adjacency()
}

fn bench_kron_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("kron_ops");
    group.sample_size(20);

    for &(pa, pb) in &[(81u64, 16u64), (256, 81), (625, 256)] {
        let a = star(pa);
        let b = star(pb);
        let produced = (a.nnz() * b.nnz()) as u64;
        group.throughput(Throughput::Elements(produced));

        group.bench_with_input(
            BenchmarkId::new("coo_sequential", format!("{pa}x{pb}")),
            &(),
            |bench, _| {
                bench.iter(|| kron_coo::<u64, PlusTimes>(&a, &b).expect("fits").nnz());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("coo_parallel", format!("{pa}x{pb}")),
            &(),
            |bench, _| {
                bench.iter(|| par_kron_coo::<u64, PlusTimes>(&a, &b).expect("fits").nnz());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming_iter", format!("{pa}x{pb}")),
            &(),
            |bench, _| {
                bench.iter(|| KronEdgeIter::<u64, PlusTimes>::new(&a, &b).count());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kron_ops);
criterion_main!(benches);
