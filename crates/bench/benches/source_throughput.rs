//! Edge-source throughput through identical pipeline terminals.
//!
//! The generic pipeline runs every source — the exact Kronecker expansion
//! and the R-MAT sampler — through the same engine, sinks, and streamed
//! histogram, which makes their generation rates directly comparable for
//! the first time: same counting sink, same validation work, only the
//! source differs.  This bench measures
//!
//! * `kronecker_counting_w{N}` — the exact expansion at 1 and 4 workers,
//! * `rmat_counting_w{N}` — the indexed R-MAT sampler at 1 and 4 workers,
//! * `*_permuted_w4` — both sources with the in-stream Feistel
//!   vertex-permutation stage enabled, to price the O(1)-memory relabelling,
//! * `replay_counting_w4` — the third source kind: binary shards written by
//!   the Kronecker run streamed back from disk through the same terminal.
//!
//! Results are printed and written as machine-readable JSON to
//! `BENCH_source_throughput.json` at the workspace root, so successive PRs
//! can track the trajectory.

use std::time::{Duration, Instant};

use kron_bench::provenance;
use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{Pipeline, ReplaySource};
use kron_rmat::{RmatParams, RmatSource};

/// The paper's `B` factor from Figures 3/4 (13,824,000 edges).
const KRON_POINTS: &[u64] = &[3, 4, 5, 9, 16, 25];
const KRON_SPLIT: usize = 2;
/// Scale 18 / edge factor 16: 4,194,304 samples over 262,144 vertices —
/// the R-MAT side of the comparison at a size every pass finishes quickly.
const RMAT_SCALE: u32 = 18;
const RMAT_SEED: u64 = 20180304;
const PERMUTE_SEED: u64 = 0x5EED;
const SAMPLES: usize = 5;

struct Measurement {
    name: String,
    median: Duration,
    edges_per_sec: f64,
}

fn measure(name: impl Into<String>, edges: u64, mut pass: impl FnMut() -> u64) -> Measurement {
    let name = name.into();
    assert_eq!(pass(), edges, "{name} produced the wrong number of edges");
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let started = Instant::now();
            criterion::black_box(pass());
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    Measurement {
        name,
        median,
        edges_per_sec: edges as f64 / median.as_secs_f64(),
    }
}

fn kron_pass(design: &KroneckerDesign, workers: usize, permute: bool) -> u64 {
    let mut pipeline = Pipeline::for_design(design)
        .workers(workers)
        .split_index(KRON_SPLIT)
        .max_c_edges(1 << 20);
    if permute {
        pipeline = pipeline.permute_vertices(PERMUTE_SEED);
    }
    let report = pipeline.count().expect("factors fit");
    assert!(report.is_valid());
    report.edge_count()
}

fn rmat_pass(params: RmatParams, workers: usize, permute: bool) -> u64 {
    let source = RmatSource::new(params, RMAT_SEED).expect("valid parameters");
    let mut pipeline = Pipeline::for_source(source).workers(workers);
    if permute {
        pipeline = pipeline.permute_vertices(PERMUTE_SEED);
    }
    let report = pipeline.count().expect("counting cannot fail");
    assert!(report.is_valid());
    report.edge_count()
}

fn main() {
    let design =
        KroneckerDesign::from_star_points(KRON_POINTS, SelfLoop::None).expect("valid design");
    let kron_edges = design.edges().to_u64().expect("bench scale");
    let params = RmatParams::graph500(RMAT_SCALE);
    let rmat_edges = params.requested_edges();
    println!("source_throughput: kronecker {kron_edges} edges, rmat {rmat_edges} samples per pass");

    let mut results: Vec<Measurement> = Vec::new();
    for &workers in &[1usize, 4] {
        results.push(measure(
            format!("kronecker_counting_w{workers}"),
            kron_edges,
            || kron_pass(&design, workers, false),
        ));
    }
    results.push(measure("kronecker_permuted_w4", kron_edges, || {
        kron_pass(&design, 4, true)
    }));
    for &workers in &[1usize, 4] {
        results.push(measure(
            format!("rmat_counting_w{workers}"),
            rmat_edges,
            || rmat_pass(params, workers, false),
        ));
    }
    results.push(measure("rmat_permuted_w4", rmat_edges, || {
        rmat_pass(params, 4, true)
    }));

    // Replay: write the Kronecker graph as binary shards once, then measure
    // streaming it back from disk through the identical counting terminal.
    let shard_dir = std::env::temp_dir().join("kron_bench_source_throughput_shards");
    let _ = std::fs::remove_dir_all(&shard_dir);
    let written = Pipeline::for_design(&design)
        .workers(4)
        .split_index(KRON_SPLIT)
        .max_c_edges(1 << 20)
        .write_binary(&shard_dir)
        .expect("shard write succeeds");
    assert!(written.is_valid());
    results.push(measure("replay_counting_w4", kron_edges, || {
        let source = ReplaySource::from_directory(&shard_dir).expect("manifest present");
        let report = Pipeline::for_source(source)
            .workers(4)
            .count()
            .expect("replay succeeds");
        assert!(report.is_valid());
        report.edge_count()
    }));
    std::fs::remove_dir_all(&shard_dir).ok();

    for m in &results {
        println!(
            "  {:<26} median {:>12?}  {:>9.1} Medges/s",
            m.name,
            m.median,
            m.edges_per_sec / 1e6
        );
    }
    let rate_of = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("no measurement named {name}"))
            .edges_per_sec
    };
    let kron_vs_rmat_w4 = rate_of("kronecker_counting_w4") / rate_of("rmat_counting_w4");
    let kron_permute_cost = rate_of("kronecker_counting_w4") / rate_of("kronecker_permuted_w4");
    let rmat_permute_cost = rate_of("rmat_counting_w4") / rate_of("rmat_permuted_w4");
    let replay_cost = rate_of("kronecker_counting_w4") / rate_of("replay_counting_w4");
    println!("  kronecker(4) vs rmat(4):              {kron_vs_rmat_w4:.2}x");
    println!("  kronecker permutation slowdown (w4):  {kron_permute_cost:.2}x");
    println!("  rmat permutation slowdown (w4):       {rmat_permute_cost:.2}x");
    println!("  replay vs regeneration (w4):          {replay_cost:.2}x");

    let json_entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"edges_per_sec\": {:.0}}}",
                m.name,
                m.median.as_secs_f64(),
                m.edges_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"source_throughput\",\n  \"kronecker\": {{\"points\": {:?}, \"split_index\": {}, \"edges\": {}}},\n  \"rmat\": {{\"scale\": {}, \"edge_factor\": 16, \"samples\": {}}},\n  \"samples\": {},\n  {},\n  \"results\": [\n{}\n  ],\n  \"kronecker_vs_rmat_w4\": {:.3},\n  \"kronecker_permute_slowdown_w4\": {:.3},\n  \"rmat_permute_slowdown_w4\": {:.3},\n  \"replay_slowdown_w4\": {:.3}\n}}\n",
        KRON_POINTS,
        KRON_SPLIT,
        kron_edges,
        RMAT_SCALE,
        rmat_edges,
        SAMPLES,
        provenance::json_fields(),
        json_entries.join(",\n"),
        kron_vs_rmat_w4,
        kron_permute_cost,
        rmat_permute_cost,
        replay_cost
    );
    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_source_throughput.json"
    );
    std::fs::write(out_path, &json).expect("write BENCH_source_throughput.json");
    println!("wrote {out_path}");
}
