//! Per-worker graph blocks.
//!
//! A [`GraphBlock`] is one worker's share of the generated graph: the
//! Kronecker product of the worker's slice of `B`'s triples with the whole of
//! `C`.  Row and column indices are *global* (indices into the full designed
//! graph), so the union of all blocks is exactly the designed adjacency
//! matrix; the block also records which `B` columns it covers, which is the
//! paper's "subtract the minimum column index" local form.

use serde::{Deserialize, Serialize};

use kron_sparse::{CooMatrix, PlusTimes};

/// One worker's block of a distributed Kronecker graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphBlock {
    /// Worker identifier `p ∈ 0..N_p`.
    pub worker: usize,
    /// The block's edges with global row/column indices.
    pub edges: CooMatrix<u64>,
    /// Smallest global `B` column index covered by this worker (the paper's
    /// per-processor column offset), if the worker received any triples.
    pub b_col_offset: Option<u64>,
    /// Number of `B` triples this worker expanded.
    pub b_triples: usize,
}

impl GraphBlock {
    /// Generate the block for `worker` from its slice of `B` triples and the
    /// replicated factor `C`.
    ///
    /// `a_rows`/`a_cols` are the dimensions of the full product graph; every
    /// produced index is within them by construction.
    pub fn generate(
        worker: usize,
        b_triples: &[(u64, u64, u64)],
        c: &CooMatrix<u64>,
        a_rows: u64,
        a_cols: u64,
    ) -> Self {
        let mut edges = CooMatrix::with_capacity(a_rows, a_cols, b_triples.len() * c.nnz());
        // Hoist `C`'s SoA triple slices out of the loop; each `B` triple then
        // contributes one bulk append of the whole of `C`, translated by the
        // triple's base offsets and scaled by its value — no per-edge bounds
        // check or iterator dispatch on the hot path.
        let (c_rows, c_cols, c_vals) = (c.row_indices(), c.col_indices(), c.values());
        let (c_nrows, c_ncols) = (c.nrows(), c.ncols());
        for &(rb, cb, vb) in b_triples {
            edges.append_translated::<PlusTimes>(
                rb * c_nrows,
                cb * c_ncols,
                vb,
                c_rows,
                c_cols,
                c_vals,
            );
        }
        let b_col_offset = b_triples.iter().map(|&(_, c, _)| c).min();
        GraphBlock {
            worker,
            edges,
            b_col_offset,
            b_triples: b_triples.len(),
        }
    }

    /// Number of edges stored in this block.
    pub fn edge_count(&self) -> usize {
        self.edges.nnz()
    }

    /// Number of self-loop (diagonal) entries in this block.
    pub fn self_loop_count(&self) -> usize {
        self.edges.iter().filter(|&(r, c, _)| r == c).count()
    }

    /// Remove a single entry at `(row, col)` if present; returns whether an
    /// entry was removed.  Used to delete the one surviving self-loop of the
    /// triangle-control construction from whichever block holds it.
    pub fn remove_entry(&mut self, row: u64, col: u64) -> bool {
        match self.edges.find_entry(row, col) {
            Some(index) => {
                self.edges.swap_remove(index);
                true
            }
            None => false,
        }
    }

    /// The paper's local form of the block: column indices shifted down so
    /// each worker's matrix starts at local column zero (the "subtract the
    /// minimum column index" step of §V).
    pub fn local_edges(&self) -> CooMatrix<u64> {
        let min_col = self.edges.col_indices().iter().min().copied().unwrap_or(0);
        let mut local = CooMatrix::new(self.edges.nrows(), self.edges.ncols() - min_col);
        for (r, c, v) in self.edges.iter() {
            local
                .push(r, c - min_col, v)
                // lint:allow(no-expect) -- the shift is bounded by the block dimensions validated at construction
                .expect("shifted column stays in bounds");
        }
        local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_sparse::{kron_coo, PlusTimes};

    fn star(points: u64) -> CooMatrix<u64> {
        let mut edges = Vec::new();
        for leaf in 1..=points {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        CooMatrix::from_edges(points + 1, points + 1, edges).unwrap()
    }

    #[test]
    fn single_block_equals_full_kron() {
        let b = star(4);
        let c = star(3);
        let triples: Vec<(u64, u64, u64)> = crate::partition::csc_ordered_triples(&b);
        let block = GraphBlock::generate(0, &triples, &c, 20, 20);
        let mut expected = kron_coo::<u64, PlusTimes>(&b, &c).unwrap();
        let mut produced = block.edges.clone();
        expected.sort();
        produced.sort();
        assert_eq!(produced, expected);
        assert_eq!(block.b_triples, b.nnz());
        assert_eq!(block.b_col_offset, Some(0));
    }

    #[test]
    fn blocks_union_to_full_graph_without_overlap() {
        let b = star(5);
        let c = star(2);
        let triples = crate::partition::csc_ordered_triples(&b);
        let part = crate::partition::Partition::even(triples.len(), 3);
        let mut union = CooMatrix::new(18, 18);
        let mut total = 0usize;
        for w in 0..3 {
            let block = GraphBlock::generate(w, &triples[part.range(w)], &c, 18, 18);
            total += block.edge_count();
            union.append(&block.edges).unwrap();
        }
        assert_eq!(total, b.nnz() * c.nnz());
        let mut expected = kron_coo::<u64, PlusTimes>(&b, &c).unwrap();
        expected.sort();
        union.sort();
        assert_eq!(union, expected);
    }

    #[test]
    fn empty_slice_produces_empty_block() {
        let c = star(2);
        let block = GraphBlock::generate(7, &[], &c, 10, 10);
        assert_eq!(block.edge_count(), 0);
        assert_eq!(block.b_col_offset, None);
        assert_eq!(block.worker, 7);
        assert_eq!(block.local_edges().nnz(), 0);
    }

    #[test]
    fn self_loop_detection_and_removal() {
        // B and C each carry one self-loop at vertex 0; the product block has
        // exactly one diagonal entry at (0, 0).
        let mut b = star(2);
        b.push(0, 0, 1).unwrap();
        let mut c = star(2);
        c.push(0, 0, 1).unwrap();
        let triples = crate::partition::csc_ordered_triples(&b);
        let mut block = GraphBlock::generate(0, &triples, &c, 9, 9);
        assert_eq!(block.self_loop_count(), 1);
        assert!(block.remove_entry(0, 0));
        assert_eq!(block.self_loop_count(), 0);
        assert!(!block.remove_entry(0, 0));
    }

    #[test]
    fn local_edges_shift_to_zero() {
        let b = star(3);
        let c = star(2);
        let triples = crate::partition::csc_ordered_triples(&b);
        // Take only the triples in B's last column (column 3).
        let last_col: Vec<_> = triples
            .iter()
            .copied()
            .filter(|&(_, col, _)| col == 3)
            .collect();
        let block = GraphBlock::generate(1, &last_col, &c, 12, 12);
        let local = block.local_edges();
        assert_eq!(local.col_indices().iter().min().copied(), Some(0));
        assert_eq!(local.nnz(), block.edge_count());
    }
}
