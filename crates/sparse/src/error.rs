//! Error type shared by the sparse kernels.

use std::fmt;

/// Errors produced by sparse matrix construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An index was outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// The offending row index.
        row: u64,
        /// The offending column index.
        col: u64,
        /// Declared number of rows.
        nrows: u64,
        /// Declared number of columns.
        ncols: u64,
    },
    /// Two operands had incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Dimensions of the left operand.
        left: (u64, u64),
        /// Dimensions of the right operand.
        right: (u64, u64),
    },
    /// A matrix was too large to materialise in addressable memory.
    TooLarge {
        /// Human-readable description of what was being materialised.
        what: &'static str,
        /// The requested size.
        requested: u128,
    },
    /// A text record could not be parsed while reading a matrix.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error (stringified to keep the error type `Clone`).
    Io(String),
    /// Stored and recomputed checksums of a file disagree: the bytes on disk
    /// are not the bytes that were written.
    ChecksumMismatch {
        /// The checksum recorded when the file was written.
        expected: u64,
        /// The checksum computed from the bytes actually read.
        actual: u64,
    },
    /// An error annotated with the file it occurred in — multi-file readers
    /// wrap per-file failures so the caller learns *which* shard was bad.
    WithPath {
        /// The file the wrapped error occurred in.
        path: String,
        /// The underlying error.
        source: Box<SparseError>,
    },
}

impl SparseError {
    /// Annotate an error with the file it occurred in.  Already-annotated
    /// errors are returned unchanged so nested readers never double-wrap.
    pub fn with_path(path: &std::path::Path, source: SparseError) -> SparseError {
        match source {
            already @ SparseError::WithPath { .. } => already,
            source => SparseError::WithPath {
                path: path.display().to_string(),
                source: Box::new(source),
            },
        }
    }
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::TooLarge { what, requested } => {
                write!(f, "{what} too large to materialise: {requested}")
            }
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            SparseError::WithPath { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 6,
            nrows: 4,
            ncols: 4,
        };
        assert!(e.to_string().contains("(5, 6)"));
        let e = SparseError::DimensionMismatch {
            op: "spgemm",
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("spgemm"));
        let e = SparseError::TooLarge {
            what: "kron",
            requested: 1 << 80,
        };
        assert!(e.to_string().contains("kron"));
        let e = SparseError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn with_path_annotates_and_never_double_wraps() {
        let path = std::path::Path::new("/data/block_00003.kbk");
        let inner = SparseError::Parse {
            line: 7,
            message: "bad magic".into(),
        };
        let wrapped = SparseError::with_path(path, inner.clone());
        assert!(wrapped.to_string().contains("block_00003.kbk"));
        assert!(wrapped.to_string().contains("bad magic"));
        let rewrapped = SparseError::with_path(std::path::Path::new("/other"), wrapped.clone());
        assert_eq!(rewrapped, wrapped, "annotation must be idempotent");
    }

    #[test]
    fn checksum_mismatch_displays_both_sums_in_hex() {
        let e = SparseError::ChecksumMismatch {
            expected: 0xdead,
            actual: 0xbeef,
        };
        let text = e.to_string();
        assert!(text.contains("0x000000000000dead"), "{text}");
        assert!(text.contains("0x000000000000beef"), "{text}");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
