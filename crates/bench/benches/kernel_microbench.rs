//! Isolated hot-kernel throughput: the three loops the pipeline's
//! end-to-end rates are made of, measured without the pipeline around
//! them.
//!
//! * `rmat_fill` — the batched R-MAT quadrant walk
//!   ([`kron_rmat::RmatBatchSampler::fill`]) drawing contiguous sample
//!   ranges into a reusable buffer.
//! * `feistel_apply` — [`kron_gen::FeistelPermutation::apply_edges_into`]
//!   relabelling 64 K-edge chunks, the in-stream permutation stage's exact
//!   call pattern.
//! * `codec_encode` / `codec_decode` — the v4 delta/varint frame codec
//!   over generated-looking edge chunks.
//!
//! End-to-end numbers live in `source_throughput` / `shard_driver`; this
//! bench exists so a kernel regression is attributable to the kernel, not
//! inferred from pipeline deltas.

use std::time::{Duration, Instant};

use kron_gen::codec::{decode_frame, encode_frame, frame_header, FRAME_HEADER_LEN};
use kron_gen::permute::FeistelPermutation;
use kron_gen::Fnv1a;
use kron_rmat::{RmatGenerator, RmatParams};

const RMAT_SCALE: u32 = 18;
const RMAT_SEED: u64 = 20180304;
const CHUNK: usize = 1 << 16;
const SAMPLES: usize = 5;

fn median_of(mut pass: impl FnMut() -> u64, items: u64) -> (Duration, f64) {
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let started = Instant::now();
            criterion::black_box(pass());
            started.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    (median, items as f64 / median.as_secs_f64())
}

fn main() {
    let params = RmatParams::graph500(RMAT_SCALE);
    let generator = RmatGenerator::new(params, RMAT_SEED).expect("valid parameters");
    let sampler = generator.batch_sampler();
    let total = params.requested_edges();
    let mut buffer = vec![(0u64, 0u64); CHUNK];
    let (median, rate) = median_of(
        || {
            let mut acc = 0u64;
            let mut index = 0u64;
            while index < total {
                let len = ((total - index) as usize).min(CHUNK);
                sampler.fill(index, &mut buffer[..len]);
                acc ^= buffer[len / 2].0;
                index += len as u64;
            }
            acc
        },
        total,
    );
    println!(
        "  rmat_fill        median {median:>12?}  {:>9.1} Medges/s",
        rate / 1e6
    );

    // The source_throughput bench's Kronecker graph has 43 200 vertices;
    // use the same domain so the cycle-walk rate matches the end-to-end
    // measurement.
    let vertices = 43_200u64;
    let perm = FeistelPermutation::new(vertices, 0x5EED);
    let edges: Vec<(u64, u64)> = (0..CHUNK as u64)
        .map(|i| {
            let r = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (r % vertices, (r >> 17) % vertices)
        })
        .collect();
    let mut out = Vec::new();
    let mut walking = Vec::new();
    let passes = 64u64;
    let (median, rate) = median_of(
        || {
            let mut acc = 0u64;
            for _ in 0..passes {
                perm.apply_edges_into(&edges, &mut out, &mut walking);
                acc ^= out[CHUNK / 2].0;
            }
            acc
        },
        passes * CHUNK as u64,
    );
    println!(
        "  feistel_apply    median {median:>12?}  {:>9.1} Medges/s",
        rate / 1e6
    );

    // A power-of-two domain accepts every walked value first try, isolating
    // the network+scan cost from the cycle-walk tail above.
    let full = FeistelPermutation::new(1u64 << 16, 0x5EED);
    let (median, rate) = median_of(
        || {
            let mut acc = 0u64;
            for _ in 0..passes {
                full.apply_edges_into(&edges, &mut out, &mut walking);
                acc ^= out[CHUNK / 2].0;
            }
            acc
        },
        passes * CHUNK as u64,
    );
    println!(
        "  feistel_nowalk   median {median:>12?}  {:>9.1} Medges/s",
        rate / 1e6
    );

    // FNV-1a paces every checksummed write and replay: bytes/edge is 16 for
    // the raw binary layout, so Medges/s here is MB/s ÷ 16.
    let payload: Vec<u8> = (0..16 * CHUNK)
        .map(|i| (i as u8).wrapping_mul(31))
        .collect();
    let (median, rate) = median_of(
        || {
            let mut acc = 0u64;
            for _ in 0..passes {
                acc ^= Fnv1a::hash(&payload);
            }
            acc
        },
        passes * CHUNK as u64,
    );
    println!(
        "  fnv_hash         median {median:>12?}  {:>9.1} Medges/s",
        rate / 1e6
    );

    let mut encoded = Vec::new();
    let (median, rate) = median_of(
        || {
            let mut acc = 0u64;
            for _ in 0..passes {
                encoded.clear();
                encode_frame(&edges, &mut encoded);
                acc ^= encoded.len() as u64;
            }
            acc
        },
        passes * CHUNK as u64,
    );
    println!(
        "  codec_encode     median {median:>12?}  {:>9.1} Medges/s",
        rate / 1e6
    );
    println!(
        "  codec ratio      {:.2}x ({} -> {} bytes per {CHUNK}-edge frame)",
        (16 * CHUNK) as f64 / encoded.len() as f64,
        16 * CHUNK,
        encoded.len()
    );

    let header: [u8; FRAME_HEADER_LEN] = encoded[..FRAME_HEADER_LEN].try_into().expect("header");
    let (count, _) = frame_header(&header);
    let mut decoded = Vec::new();
    let (median, rate) = median_of(
        || {
            let mut acc = 0u64;
            for _ in 0..passes {
                decode_frame(count, &encoded[FRAME_HEADER_LEN..], &mut decoded)
                    .expect("round trip");
                acc ^= decoded[CHUNK / 2].0;
            }
            acc
        },
        passes * CHUNK as u64,
    );
    println!(
        "  codec_decode     median {median:>12?}  {:>9.1} Medges/s",
        rate / 1e6
    );
}
