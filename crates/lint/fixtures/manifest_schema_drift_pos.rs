//@ path: crates/gen/src/manifest.rs
pub fn to_json(out: &mut String, v: &str, n: u64) {
    write_string(out, "kept", v);
    write_number(out, "dropped", &n.to_string()); //~ manifest-schema-drift
    out.push_str("{\"journal\": true}"); //~ manifest-schema-drift
}

pub fn from_json(obj: &JsonObject) -> Option<u64> {
    let _ = get(obj, "kept")?;
    optional_u64(obj, "phantom") //~ manifest-schema-drift
}
