//@ path: crates/core/src/under_test.rs
//@ expect: no-hash-collections@5
//@ expect: no-hash-collections@7

use std::collections::HashMap;

pub fn histogram(values: &[u64]) -> HashMap<u64, u64> {
    let mut out = HashMap::new(); //~ no-hash-collections
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
    }
    out
}
