//! `--changed` support: scope the *reported* findings to the files
//! touched relative to the merge base with the main branch.
//!
//! The full workspace is still analyzed — the call graph must see every
//! file or panic-reachability would miss cross-file paths — but only
//! findings in changed files are printed and counted, so a local
//! pre-push run stays quiet about pre-existing, already-justified
//! state elsewhere in the tree.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

/// Merge-base candidates, tried in order; the first that resolves wins.
const BASE_CANDIDATES: &[&str] = &["origin/main", "origin/master", "main", "master"];

fn git_lines(root: &Path, args: &[&str]) -> Option<Vec<String>> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    Some(
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect(),
    )
}

/// The set of workspace-relative paths changed vs the merge base with
/// the main branch: committed + staged + working-tree diffs, plus
/// untracked files.  `None` when `root` is not a git checkout (the
/// caller should fall back to a full run).
pub fn changed_files(root: &Path) -> Option<BTreeSet<String>> {
    // Confirm we are inside a work tree at all.
    git_lines(root, &["rev-parse", "--is-inside-work-tree"])?;
    let base = BASE_CANDIDATES
        .iter()
        .find_map(|cand| {
            git_lines(root, &["merge-base", "HEAD", cand]).and_then(|lines| lines.first().cloned())
        })
        .unwrap_or_else(|| "HEAD".to_string());
    let mut out: BTreeSet<String> = BTreeSet::new();
    // Diff of the working tree (committed + staged + unstaged) vs base.
    if let Some(lines) = git_lines(root, &["diff", "--name-only", &base]) {
        out.extend(lines);
    }
    // Untracked files are changes too.
    if let Some(lines) = git_lines(root, &["ls-files", "--others", "--exclude-standard"]) {
        out.extend(lines);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outside_a_repo_returns_none() {
        // The filesystem root is reliably not a git work tree here.
        assert!(changed_files(Path::new("/proc")).is_none());
    }
}
